//! Direction-optimizing BFS (Beamer–Asanović–Patterson, SC'12), bit-identical to the
//! top-down kernel.
//!
//! A level-synchronous top-down BFS charges one edge scan to every frontier vertex's row.
//! When the frontier is a large fraction of the graph — the middle levels of any
//! low-diameter graph — most of those scans land on already-visited vertices. The
//! direction-optimizing variant runs such levels *bottom-up* instead: scan the still
//! unvisited vertices and probe each one's row for a parent in the current frontier, which
//! touches `O(Σ deg(unvisited))` words instead of `O(Σ deg(frontier))`.
//!
//! # The switch heuristic
//!
//! [`DirOptScratch`] compares the total degree of the frontier (`m_f`) against the total
//! degree of the still undiscovered vertices (`m_u`) and their count (`n_u`), and switches
//! per level:
//!
//! * top-down → bottom-up when `m_f > α · (m_u + n_u) + S` (α = [`DIR_OPT_ALPHA`]), where
//!   `S` is `n` until the unvisited snapshot exists and `0` afterwards — the first flip
//!   pays an O(n) scan to build the snapshot, and pricing it in keeps a small tail region
//!   (the last corner of a grid sweep) from baiting a full-array scan;
//! * bottom-up → top-down when the frontier shrinks below `n / β` vertices
//!   (β = [`DIR_OPT_BETA`]).
//!
//! The switch condition deliberately differs from the SC'12 paper's `m_f > m_u / 14`. That
//! form prices the bottom-up step with its early exit, which makes its expected cost a small
//! fraction of `m_u`; our bottom-up step *forgoes* the early exit to stay bit-identical
//! (see below), so a bottom-up level costs the full `Θ(m_u + n_u)` — every undiscovered
//! vertex pays one check plus its whole row. Flipping on the classic condition therefore
//! runs bottom-up on levels where it does up to 28× *more* work than top-down (measured:
//! 0.6–0.9× end-to-end on every workload). The honest condition compares the two exact
//! costs and flips only when the frontier side is α× heavier, with α a small safety margin
//! for bottom-up's fixed overheads (snapshot, position stamps, counting sort). The `n_u`
//! term also keeps a sea of zero-degree unvisited vertices (disconnected workloads) from
//! baiting the kernel into rescanning them every level. The test is also free: both sides
//! derive from one running tally (the total degree of completed levels, accumulated from
//! row lengths the traversal loads anyway), and a `|frontier| · max_degree` upper bound
//! pre-filters the exact frontier sweep, so the discovery hot path carries no heuristic
//! bookkeeping at all — on a high-diameter grid, where the heuristic can never help, the
//! kernel runs at top-down speed instead of paying a ~20% tracking tax. The constants only
//! steer *which* step runs — every reachable state produces the same answers, so no tuning
//! can change a result, only a running time.
//!
//! # Why the output is bit-identical to [`BfsScratch`](crate::BfsScratch)
//!
//! The top-down kernel with sorted rows satisfies two invariants at every level:
//!
//! 1. **Parent rule.** `parent(w)` is the frontier vertex adjacent to `w` with the *minimum
//!    dequeue position* in the current frontier (the first frontier vertex processed that
//!    sees `w`), not the minimum vertex id — the two differ whenever a lower-id vertex was
//!    discovered later.
//! 2. **Order rule.** The next level lists the discovered vertices grouped by their parent's
//!    frontier position, ascending vertex id within a group (each frontier vertex appends
//!    its discoveries in row order, and rows are sorted).
//!
//! The bottom-up step reproduces both exactly: it scans the unvisited vertices in ascending
//! id, computes for each the minimum frontier *position* over its current-level neighbours
//! (a full row scan — the classic first-parent early exit would pick the minimum *id* and
//! break bit-identity, which is the documented price of determinism), then emits the next
//! level with a stable counting sort on parent position. Stability plus the ascending scan
//! makes within-group order ascending id, matching invariant 2. The differential suite
//! (`tests/bfs_kernel_differential.rs`) pins `dist`/`parent`/`order` across every seeded
//! workload family, including the avoiding variant used by the brute-force comparator.

use crate::csr::{decode_parents, CsrGraph, NO_PARENT};
use crate::distance::{Distance, INFINITE_DISTANCE};
use crate::edge::Edge;
use crate::graph::Vertex;

/// Top-down → bottom-up threshold: switch when the frontier's total degree exceeds α times
/// the undiscovered side's scan cost (`m_u + n_u`). Not Beamer et al.'s α = 14 — our
/// bottom-up step has no early exit (the bit-identity price), so both sides are priced at
/// their exact edge counts and α is only a safety margin for bottom-up's fixed overheads.
pub const DIR_OPT_ALPHA: u64 = 2;

/// Bottom-up → top-down threshold: switch back when the frontier holds fewer than `n / β`
/// vertices (Beamer et al.'s β = 24).
pub const DIR_OPT_BETA: u64 = 24;

/// Reusable buffers for direction-optimizing BFS; the drop-in sibling of
/// [`BfsScratch`](crate::BfsScratch) with the same `O(visited)` reset discipline and the
/// same flat sentinel-encoded parent array.
///
/// ```
/// use msrp_graph::{bfs_csr, DirOptScratch, Graph};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let csr = g.freeze();
/// let mut scratch = DirOptScratch::new();
/// for s in 0..5 {
///     scratch.run(&csr, s);
///     // Bit-identical to the top-down kernel, not merely equal distances.
///     assert_eq!(scratch.to_result(), bfs_csr(&csr, s));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DirOptScratch {
    dist: Vec<Distance>,
    /// Flat sentinel-encoded parents (`NO_PARENT` = none), as in `BfsScratch`.
    parent: Vec<u32>,
    /// The queue/visit order; `order[level_start..]` is the current frontier.
    order: Vec<Vertex>,
    /// Frontier position stamps. Only current-level stamps are ever read: `pos[x]` is
    /// consulted only when `dist[x]` equals the current level, and every such vertex was
    /// just stamped — stale entries from older levels or runs are unreachable.
    pos: Vec<u32>,
    /// Compacted list of undiscovered vertices, ascending id; built lazily on the first
    /// bottom-up level of a run and maintained by compaction afterwards.
    unvisited: Vec<u32>,
    /// Counting-sort workspace of the bottom-up step (one bucket per frontier position).
    counts: Vec<u32>,
    /// `(parent position, vertex)` discoveries of the current bottom-up level.
    found: Vec<(u32, u32)>,
    source: Vertex,
}

impl DirOptScratch {
    /// Creates an empty scratch; buffers are sized lazily on the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets `dist`/`parent` in `O(visited)` via the previous order (full `O(n)` init only
    /// when the vertex count changes), mirroring `BfsScratch::reset`.
    fn reset(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INFINITE_DISTANCE);
            self.parent.clear();
            self.parent.resize(n, NO_PARENT);
            self.order.clear();
            self.order.reserve(n);
            self.pos.clear();
            self.pos.resize(n, 0);
        } else {
            for &v in &self.order {
                self.dist[v] = INFINITE_DISTANCE;
                self.parent[v] = NO_PARENT;
            }
            self.order.clear();
        }
        self.unvisited.clear();
    }

    /// Runs direction-optimizing BFS from `source`, producing the same `dist`/`parent`/
    /// `order` as [`BfsScratch::run`](crate::BfsScratch::run), bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run(&mut self, g: &CsrGraph, source: Vertex) {
        self.run_impl::<false>(g, source, usize::MAX, usize::MAX);
    }

    /// Runs direction-optimizing BFS from `source` in `G \ {avoid}`, bit-identical to
    /// [`BfsScratch::run_avoiding`](crate::BfsScratch::run_avoiding).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn run_avoiding(&mut self, g: &CsrGraph, source: Vertex, avoid: Edge) {
        let (lo, hi) = avoid.endpoints();
        self.run_impl::<true>(g, source, lo, hi);
    }

    fn run_impl<const AVOID: bool>(&mut self, g: &CsrGraph, source: Vertex, lo: usize, hi: usize) {
        let n = g.vertex_count();
        assert!(source < n, "BFS source {source} out of range (n = {n})");
        self.reset(n);
        self.source = source;
        let DirOptScratch { dist, parent, order, pos, unvisited, counts, found, .. } = self;
        // Slice reborrows of the index-only buffers, as in `BfsScratch::run_impl`: the hot
        // loops' loads and stores carry noalias slice information instead of re-deriving
        // each access through a `&mut Vec` header that `order.push` might have touched.
        let dist = &mut dist[..];
        let parent = &mut parent[..];
        let pos = &mut pos[..];
        dist[source] = 0;
        order.push(source);
        // The flip test needs the frontier's total degree `m_f` and the undiscovered side's
        // `m_u`. Both derive from one free quantity: `processed_deg`, the total degree of
        // all *completed* levels, accumulated from row lengths the traversal loads anyway —
        // so the hot discovery path carries zero heuristic bookkeeping (a per-discovery
        // `degree()` lookup measured ~20% on cache-resident grids). With
        // `rest = 2m − processed_deg = m_f + m_u`, the flip condition
        // `m_f > α·(m_u + n_u) + S` becomes `(1 + α)·m_f > α·(rest + n_u) + S`, and
        // `|frontier| · max_degree ≥ m_f` gives a free pre-filter: only when the bound
        // passes does an O(|frontier|) sweep compute the exact `m_f` (u64: 2m times α + 1
        // must not overflow on large graphs).
        let max_deg = g.max_degree() as u64;
        let total_deg = 2 * g.edge_count() as u64;
        let mut processed_deg = 0u64;
        let mut unvisited_built = false;
        let mut bottom_up = false;
        let mut level_start = 0usize;
        while level_start < order.len() {
            let level_end = order.len();
            if level_end == n {
                // Every vertex is discovered: the remaining frontier can find nothing, and
                // dist/parent/order are already final. Stopping here skips the last
                // frontier's scan — and keeps a rest-plus-tail of zero from flipping a
                // pure top-down run bottom-up at the very end just to build an empty
                // snapshot with an O(n) pass.
                break;
            }
            // Undiscovered vertices (everything not yet in `order`): a bottom-up level
            // pays one check for each of them even when their rows are empty. The *first*
            // bottom-up level additionally pays an O(n) scan to snapshot that set, so the
            // flip prices the snapshot in until it exists — otherwise a small tail region
            // (the last corner of a grid sweep) baits a pure top-down run into a full-array
            // scan it barely uses.
            let frontier_len = (level_end - level_start) as u64;
            let n_unvisited = (n - level_end) as u64;
            let rest = total_deg - processed_deg;
            let snapshot_charge = if unvisited_built { 0 } else { n as u64 };
            let threshold = DIR_OPT_ALPHA * (rest + n_unvisited) + snapshot_charge;
            if bottom_up {
                if frontier_len * DIR_OPT_BETA < n as u64 {
                    bottom_up = false;
                }
            } else if (DIR_OPT_ALPHA + 1) * rest.min(frontier_len * max_deg) > threshold {
                let m_frontier: u64 =
                    order[level_start..level_end].iter().map(|&v| g.degree(v) as u64).sum();
                if (DIR_OPT_ALPHA + 1) * m_frontier > threshold {
                    bottom_up = true;
                }
            }
            if bottom_up {
                if !unvisited_built {
                    // First bottom-up level of this run: snapshot the undiscovered set in
                    // ascending id order. Later levels (even after intervening top-down
                    // ones) only compact it, so the O(n) scan happens at most once per run.
                    unvisited
                        .extend((0..n as u32).filter(|&v| dist[v as usize] == INFINITE_DISTANCE));
                    unvisited_built = true;
                }
                // Stamp the frontier positions the parent rule minimizes over, and retire
                // the frontier's degrees (a bottom-up level never scans its own rows, so
                // this loop is where their contribution to `processed_deg` is counted).
                for (i, &v) in order[level_start..level_end].iter().enumerate() {
                    pos[v] = i as u32;
                    processed_deg += g.degree(v) as u64;
                }
                let dv = dist[order[level_start]];
                found.clear();
                let mut keep = 0usize;
                for idx in 0..unvisited.len() {
                    let w = unvisited[idx];
                    let wu = w as usize;
                    if dist[wu] != INFINITE_DISTANCE {
                        continue; // discovered by a top-down level since the snapshot
                    }
                    // Minimum frontier position over current-level neighbours — the full
                    // row scan (no early exit) is what keeps the parent choice identical
                    // to the top-down kernel's first-discoverer rule.
                    let mut best = u32::MAX;
                    for &x in g.neighbor_row(wu) {
                        let xu = x as usize;
                        if AVOID && ((wu == lo && xu == hi) || (wu == hi && xu == lo)) {
                            continue;
                        }
                        if dist[xu] == dv && pos[xu] < best {
                            best = pos[xu];
                        }
                    }
                    if best != u32::MAX {
                        dist[wu] = dv + 1;
                        parent[wu] = order[level_start + best as usize] as u32;
                        found.push((best, w));
                    } else {
                        unvisited[keep] = w;
                        keep += 1;
                    }
                }
                unvisited.truncate(keep);
                // Stable counting sort by parent position: reproduces the top-down append
                // order (per-parent groups in frontier order; the ascending unvisited scan
                // already yields ascending id within each group).
                let buckets = level_end - level_start;
                counts.clear();
                counts.resize(buckets + 1, 0);
                for &(p, _) in found.iter() {
                    counts[p as usize + 1] += 1;
                }
                for i in 1..=buckets {
                    counts[i] += counts[i - 1];
                }
                order.resize(level_end + found.len(), 0);
                for &(p, w) in found.iter() {
                    let slot = counts[p as usize] as usize;
                    counts[p as usize] += 1;
                    order[level_end + slot] = w as usize;
                }
            } else {
                // Top-down level: the BfsScratch kernel over the frontier window, plus one
                // free row-length accumulation per processed vertex.
                for i in level_start..level_end {
                    let v = order[i];
                    let dvv = dist[v];
                    let row = g.neighbor_row(v);
                    processed_deg += row.len() as u64;
                    for &w in row {
                        let wu = w as usize;
                        if AVOID && ((v == lo && wu == hi) || (v == hi && wu == lo)) {
                            continue;
                        }
                        if dist[wu] == INFINITE_DISTANCE {
                            dist[wu] = dvv + 1;
                            parent[wu] = v as u32;
                            order.push(wu);
                        }
                    }
                }
            }
            level_start = level_end;
        }
    }

    /// The source of the last run.
    #[inline]
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Distances of the last run (`INFINITE_DISTANCE` for unreachable vertices).
    #[inline]
    pub fn dist(&self) -> &[Distance] {
        &self.dist
    }

    /// The flat sentinel-encoded parent array of the last run ([`NO_PARENT`] = none), the
    /// same encoding as [`BfsScratch::parent_raw`](crate::BfsScratch::parent_raw).
    #[inline]
    pub fn parent_raw(&self) -> &[u32] {
        &self.parent
    }

    /// BFS-tree parent of `v` (`None` for the source and unreachable vertices).
    #[inline]
    pub fn parent_of(&self, v: Vertex) -> Option<Vertex> {
        let p = self.parent[v];
        if p == NO_PARENT {
            None
        } else {
            Some(p as Vertex)
        }
    }

    /// Reachable vertices of the last run in dequeue order (source first).
    #[inline]
    pub fn order(&self) -> &[Vertex] {
        &self.order
    }

    /// Clones the buffers of the last run into an owned [`BfsResult`](crate::BfsResult).
    pub fn to_result(&self) -> crate::BfsResult {
        crate::BfsResult {
            source: self.source,
            dist: self.dist.clone(),
            parent: decode_parents(&self.parent),
            order: self.order.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::BfsScratch;
    use crate::graph::Graph;

    fn assert_matches_top_down(g: &Graph, sources: &[Vertex]) {
        let csr = g.freeze();
        let mut td = BfsScratch::new();
        let mut dopt = DirOptScratch::new();
        for &s in sources {
            td.run(&csr, s);
            dopt.run(&csr, s);
            assert_eq!(dopt.dist(), td.dist(), "dist s={s}");
            assert_eq!(dopt.parent_raw(), td.parent_raw(), "parent s={s}");
            assert_eq!(dopt.order(), td.order(), "order s={s}");
            for e in g.edges().take(32) {
                td.run_avoiding(&csr, s, e);
                dopt.run_avoiding(&csr, s, e);
                assert_eq!(dopt.to_result(), td.to_result(), "avoiding s={s} e={e}");
            }
        }
    }

    #[test]
    fn star_stays_correct_and_never_overpays_bottom_up() {
        // From the center the whole graph is level 1, so the heuristic flips only on the
        // final empty-tail level. From a leaf, bottom-up at the center level would scan
        // exactly as many edges as top-down (39 leaf rows vs the center's row) — the
        // cost-honest α correctly refuses to flip. Either way the answers must match.
        let g = crate::generators::star_graph(40);
        assert_matches_top_down(&g, &[0, 1, 39]);
    }

    #[test]
    fn heuristic_flips_bottom_up_and_back_on_a_dense_core_with_a_tail() {
        // K₁₆ (vertices 0–15) with a 20-vertex path hanging off vertex 15. From a core
        // source, level 1 is the other fifteen clique vertices: m_f = 226 beats
        // α·(m_u + n_u) + n = 2·59 + 36, so the level runs bottom-up with *real*
        // unvisited work (vertex 16's row scan picks its parent). The next frontier
        // is the single path vertex 16, and 1 · β = 24 < n = 36, so the kernel switches
        // back and walks the tail top-down: one run exercises top-down → bottom-up →
        // top-down, including the β condition that needs n > β to ever fire.
        let mut edges: Vec<(Vertex, Vertex)> =
            (0..16).flat_map(|u| (u + 1..16).map(move |v| (u, v))).collect();
        edges.extend((15..35).map(|u| (u, u + 1)));
        let g = Graph::from_edges(36, &edges).unwrap();
        assert_matches_top_down(&g, &[0, 15, 16, 35]);
    }

    #[test]
    fn parent_is_min_frontier_position_not_min_id() {
        // From source 0: level 1 is [1, 2]; vertex 1 (position 0) discovers 4, 6, 7 before
        // vertex 2 (position 1) discovers 3, so level 2 is [4, 6, 7, 3] and the *lowest-id*
        // level-2 vertex holds the *highest* frontier position. Vertex 5 neighbours 3 and
        // 4: the top-down kernel discovers it from 4 (minimum position). A bottom-up step
        // picking the minimum-id parent, or early-exiting on the first row hit (5's sorted
        // row starts with 3), would both answer 3 and diverge. The clique of edges among
        // {3, 4, 6, 7} fattens the level-2 frontier (m_f = 19 vs α·(m_u + n_u) + n =
        // 2·3 + 8) so the cost-honest heuristic really runs that level bottom-up and the
        // divergence would actually fire.
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 4),
                (2, 3),
                (2, 4),
                (1, 6),
                (1, 7),
                (4, 5),
                (3, 5),
                (3, 4),
                (4, 6),
                (4, 7),
                (6, 7),
                (3, 6),
                (3, 7),
            ],
        )
        .unwrap();
        assert_matches_top_down(&g, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn disconnected_and_single_vertex_graphs() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        assert_matches_top_down(&g, &[0, 2, 3, 4, 6]);
        let lone = Graph::new(1);
        assert_matches_top_down(&lone, &[0]);
    }

    #[test]
    fn scratch_reuse_across_sizes_and_avoiding_runs_is_clean() {
        let big = crate::generators::grid_graph(6, 6);
        let small = crate::generators::cycle_graph(5);
        let mut dopt = DirOptScratch::new();
        let mut td = BfsScratch::new();
        for (g, s) in [(&big, 0usize), (&small, 3), (&big, 35), (&small, 0)] {
            let csr = g.freeze();
            dopt.run(&csr, s);
            td.run(&csr, s);
            assert_eq!(dopt.to_result(), td.to_result());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let csr = Graph::new(2).freeze();
        DirOptScratch::new().run(&csr, 5);
    }
}
