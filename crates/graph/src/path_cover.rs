//! Heavy-path cover decomposition of shortest-path trees.
//!
//! The Bernstein–Karger single-fault preprocessing (`msrp-oracle::bk`) does not run one
//! avoiding search per tree edge; it walks each source's BFS tree *path by path*. This module
//! provides the decomposition: the reachable vertices of a [`ShortestPathTree`] are partitioned
//! into **vertex-disjoint descending chains** (a *path cover*), built by always following the
//! child with the largest subtree (the classical heavy-path rule of Sleator–Tarjan). Every tree
//! edge `(parent(c), c)` belongs to exactly one cover path — the path owning its deeper
//! endpoint `c` — so iterating the cover paths top-to-bottom enumerates each tree edge exactly
//! once, with the nested-subtree context the per-edge replacement computation needs.
//!
//! Two structural facts make the cover useful:
//!
//! * **Contiguous subtrees.** The decomposition fixes a heavy-first DFS preorder, under which
//!   the descendants of any vertex form a contiguous slice ([`descendants`]
//!   (TreePathCover::descendants)). Enumerating the subtree below a failed edge is therefore
//!   `O(|subtree|)`, never an `O(n)` scan — this is what makes the BK construction
//!   output-sensitive.
//! * **Logarithmic crossing bound.** Any root→`t` tree path intersects at most
//!   `⌊log₂ n⌋ + 1` distinct cover paths (each light edge at least halves the subtree size),
//!   the bound Bernstein–Karger charge their per-path tables against. The property suite
//!   (`tests/path_cover_properties.rs`) pins this on seeded random trees.

use crate::edge::Edge;
use crate::graph::Vertex;
use crate::tree::ShortestPathTree;

/// Sentinel for "not covered" (`path_of`/`pre` of unreachable vertices).
const NONE: u32 = u32::MAX;

/// A heavy-path cover of a rooted [`ShortestPathTree`]: vertex-disjoint descending chains
/// covering every reachable vertex, plus the heavy-first preorder that makes every subtree a
/// contiguous slice.
///
/// ```
/// use msrp_graph::{Graph, ShortestPathTree, TreePathCover};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// // A path 0-1-2-3 with a pendant 4 off vertex 1.
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (1, 4)])?;
/// let tree = ShortestPathTree::build(&g, 0);
/// let cover = TreePathCover::build(&tree);
/// // Two chains: the heavy spine 0-1-2-3 and the pendant 4.
/// assert_eq!(cover.path_count(), 2);
/// assert_eq!(cover.path(0), &[0, 1, 2, 3]);
/// assert_eq!(cover.path(1), &[4]);
/// // Subtrees are contiguous preorder slices.
/// assert_eq!(cover.descendants(1), &[1, 2, 3, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TreePathCover {
    /// Heavy-first DFS preorder of the reachable vertices (root first). Chains are contiguous
    /// in this order, and so is every subtree.
    preorder: Vec<Vertex>,
    /// Position of each vertex in `preorder` (`NONE` for unreachable vertices).
    pre: Vec<u32>,
    /// Subtree size (self included) of each reachable vertex; 0 for unreachable vertices.
    size: Vec<u32>,
    /// Cover-path id of each reachable vertex (`NONE` for unreachable vertices).
    path_of: Vec<u32>,
    /// 0-based position of each reachable vertex within its cover path (0 = head).
    index_in_path: Vec<u32>,
    /// `(preorder index of the head, chain length)` per cover path, in discovery order
    /// (path 0 contains the root). Chains are contiguous preorder slices.
    paths: Vec<(u32, u32)>,
}

impl TreePathCover {
    /// Decomposes `tree` into its heavy-path cover.
    ///
    /// Deterministic: subtree-size ties between children are broken toward the child first in
    /// BFS-discovery order (ascending vertex id, since BFS scans sorted adjacency rows).
    pub fn build(tree: &ShortestPathTree) -> Self {
        let n = tree.vertex_count();
        let children = tree.children_of();
        // Subtree sizes: reverse BFS order visits every child before its parent.
        let mut size = vec![0u32; n];
        for &v in tree.bfs_order().iter().rev() {
            size[v] = 1 + children[v].iter().map(|&c| size[c]).sum::<u32>();
        }
        // Heavy child per vertex (first maximum = lowest id, deterministic).
        let mut heavy: Vec<Option<Vertex>> = vec![None; n];
        for &v in tree.bfs_order() {
            // Not `max_by_key`, which keeps the *last* maximum: ties must go to the child
            // first in discovery order for the documented lowest-id tie-break.
            heavy[v] =
                children[v].iter().copied().fold(None, |best: Option<Vertex>, c| match best {
                    Some(b) if size[b] >= size[c] => Some(b),
                    _ => Some(c),
                });
        }
        // Heavy-first DFS: descend the heavy child first so every chain (and every subtree)
        // is contiguous in preorder.
        let mut preorder = Vec::with_capacity(tree.bfs_order().len());
        let mut pre = vec![NONE; n];
        let mut path_of = vec![NONE; n];
        let mut index_in_path = vec![0u32; n];
        let mut paths: Vec<(u32, u32)> = Vec::new();
        if n > 0 {
            let root = tree.source();
            // Stack of (vertex, continues-parent's-chain); light children are pushed in
            // reverse so the lowest-id light child is visited first.
            let mut stack: Vec<(Vertex, bool)> = vec![(root, false)];
            while let Some((v, continues)) = stack.pop() {
                let path_id = if continues {
                    let id = path_of[tree.parent(v).expect("chain vertex has a parent")];
                    paths[id as usize].1 += 1;
                    id
                } else {
                    paths.push((preorder.len() as u32, 1));
                    (paths.len() - 1) as u32
                };
                path_of[v] = path_id;
                index_in_path[v] = paths[path_id as usize].1 - 1;
                pre[v] = preorder.len() as u32;
                preorder.push(v);
                let h = heavy[v];
                for &c in children[v].iter().rev() {
                    if Some(c) != h {
                        stack.push((c, false));
                    }
                }
                if let Some(h) = h {
                    stack.push((h, true));
                }
            }
        }
        TreePathCover { preorder, pre, size, path_of, index_in_path, paths }
    }

    /// Number of cover paths (equals the number of leaves of the tree).
    #[inline]
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The vertices of cover path `i`, top (shallowest) to bottom.
    ///
    /// # Panics
    ///
    /// Panics if `i >= path_count()`.
    #[inline]
    pub fn path(&self, i: usize) -> &[Vertex] {
        let (start, len) = self.paths[i];
        &self.preorder[start as usize..(start + len) as usize]
    }

    /// Cover path owning `v` (`None` for unreachable vertices).
    #[inline]
    pub fn path_of(&self, v: Vertex) -> Option<usize> {
        (self.path_of[v] != NONE).then_some(self.path_of[v] as usize)
    }

    /// 0-based position of `v` within its cover path (meaningful only when
    /// [`path_of`](Self::path_of) is `Some`).
    #[inline]
    pub fn index_in_path(&self, v: Vertex) -> usize {
        self.index_in_path[v] as usize
    }

    /// The heavy-first DFS preorder (reachable vertices, root first).
    #[inline]
    pub fn preorder(&self) -> &[Vertex] {
        &self.preorder
    }

    /// Number of descendants of `v`, itself included (0 for unreachable vertices).
    #[inline]
    pub fn subtree_size(&self, v: Vertex) -> usize {
        self.size[v] as usize
    }

    /// The descendants of `v` (itself included) as a contiguous preorder slice; empty for
    /// unreachable vertices.
    #[inline]
    pub fn descendants(&self, v: Vertex) -> &[Vertex] {
        if self.pre[v] == NONE {
            return &[];
        }
        let start = self.pre[v] as usize;
        &self.preorder[start..start + self.size[v] as usize]
    }

    /// `true` when `v` lies in the subtree of `a` (`a` included) — an `O(1)` interval test on
    /// the heavy-first preorder, equivalent to
    /// [`ShortestPathTree::is_ancestor`]`(a, v)` for reachable vertices.
    #[inline]
    pub fn in_subtree(&self, a: Vertex, v: Vertex) -> bool {
        let (pa, pv) = (self.pre[a], self.pre[v]);
        pa != NONE && pv != NONE && pa <= pv && pv < pa + self.size[a]
    }

    /// `true` when either endpoint of `e` lies in the subtree of `a` — two `O(1)` interval
    /// tests.
    ///
    /// This is the membership query incremental rebuilds hang invalidation on: the
    /// replacement table of the cut below `a` is a function of the seeds and the subtree-
    /// internal search, i.e. only of edges with at least one endpoint inside the subtree of
    /// `a`. An edge for which this returns `false` cannot change that cut's rows.
    ///
    /// # Panics
    ///
    /// Panics if `a` or an endpoint of `e` is at least the tree's vertex count (same
    /// contract as [`in_subtree`](Self::in_subtree)).
    #[inline]
    pub fn edge_touches_subtree(&self, a: Vertex, e: Edge) -> bool {
        self.in_subtree(a, e.lo()) || self.in_subtree(a, e.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn cover_of(g: &Graph, s: Vertex) -> (ShortestPathTree, TreePathCover) {
        let tree = ShortestPathTree::build(g, s);
        let cover = TreePathCover::build(&tree);
        (tree, cover)
    }

    #[test]
    fn single_vertex_tree_is_one_path() {
        let (_, cover) = cover_of(&Graph::new(1), 0);
        assert_eq!(cover.path_count(), 1);
        assert_eq!(cover.path(0), &[0]);
        assert_eq!(cover.path_of(0), Some(0));
        assert_eq!(cover.descendants(0), &[0]);
        assert_eq!(cover.subtree_size(0), 1);
    }

    #[test]
    fn spine_follows_the_heavy_child() {
        // Root 0 with a heavy chain 0-1-2-3 and a light pendant 4 off the root.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]).unwrap();
        let (_, cover) = cover_of(&g, 0);
        assert_eq!(cover.path_count(), 2);
        assert_eq!(cover.path(0), &[0, 1, 2, 3]);
        assert_eq!(cover.path(1), &[4]);
        assert_eq!(cover.index_in_path(2), 2);
        assert_eq!(cover.index_in_path(4), 0);
    }

    #[test]
    fn star_decomposes_into_center_spine_plus_singletons() {
        let g = crate::generators::star_graph(6);
        let (tree, cover) = cover_of(&g, 0);
        // All leaves have subtree size 1; the tie-break picks the lowest id as heavy.
        assert_eq!(cover.path_count(), 5);
        assert_eq!(cover.path(0), &[0, 1]);
        for leaf in 2..6 {
            assert_eq!(cover.path(cover.path_of(leaf).unwrap()), &[leaf]);
        }
        assert_eq!(cover.descendants(0).len(), tree.vertex_count());
    }

    #[test]
    fn subtree_slices_match_ancestry() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (2, 5), (5, 6)])
            .unwrap();
        let (tree, cover) = cover_of(&g, 0);
        for a in 0..7 {
            let slice: Vec<Vertex> = cover.descendants(a).to_vec();
            let expected: Vec<Vertex> =
                (0..7).filter(|&v| tree.is_reachable(v) && tree.is_ancestor(a, v)).collect();
            let mut sorted = slice.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, expected, "a={a}");
            for v in 0..7 {
                assert_eq!(
                    cover.in_subtree(a, v),
                    tree.is_reachable(v) && tree.is_reachable(a) && tree.is_ancestor(a, v),
                    "a={a} v={v}"
                );
            }
        }
    }

    #[test]
    fn unreachable_vertices_are_uncovered() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let (_, cover) = cover_of(&g, 0);
        assert_eq!(cover.preorder().len(), 3);
        for v in [3, 4] {
            assert_eq!(cover.path_of(v), None);
            assert!(cover.descendants(v).is_empty());
            assert_eq!(cover.subtree_size(v), 0);
            assert!(!cover.in_subtree(0, v));
            assert!(!cover.in_subtree(v, v));
        }
    }

    #[test]
    fn edge_membership_matches_endpoint_ancestry() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (2, 5), (5, 6)])
            .unwrap();
        let (tree, cover) = cover_of(&g, 0);
        for a in 0..7 {
            for e in g.edges() {
                let expected = [e.lo(), e.hi()].iter().any(|&v| {
                    tree.is_reachable(v) && tree.is_reachable(a) && tree.is_ancestor(a, v)
                });
                assert_eq!(cover.edge_touches_subtree(a, e), expected, "a={a} e={e:?}");
            }
        }
        // An edge fully outside a deep subtree never touches it.
        assert!(!cover.edge_touches_subtree(5, crate::Edge::new(0, 1)));
    }

    #[test]
    fn chains_are_parent_child_runs() {
        let g = crate::generators::grid_graph(4, 4);
        let (tree, cover) = cover_of(&g, 0);
        for i in 0..cover.path_count() {
            let chain = cover.path(i);
            for w in chain.windows(2) {
                assert_eq!(tree.parent(w[1]), Some(w[0]), "chain {i} must descend parent→child");
            }
        }
    }
}
