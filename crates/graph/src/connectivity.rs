//! Bridges, articulation points and 2-edge-connected components (DFS low-link).
//!
//! Bridges are exactly the edges whose failure admits *no* replacement path for some pair, so
//! they are the structurally "critical" links; the network simulator and the test-suite use this
//! module to predict which replacement distances must be infinite, and the experiment harness
//! uses it to characterize workloads.

use crate::csr::CsrGraph;
use crate::edge::Edge;
use crate::graph::{Graph, Vertex};

/// The output of the low-link analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnectivityReport {
    /// All bridge edges, in normalized order.
    pub bridges: Vec<Edge>,
    /// All articulation (cut) vertices, sorted.
    pub articulation_points: Vec<Vertex>,
    /// `component[v]` is the id of the 2-edge-connected component containing `v`
    /// (`usize::MAX` for isolated behaviour never occurs: every vertex gets an id).
    pub two_edge_component: Vec<usize>,
    /// Number of 2-edge-connected components.
    pub two_edge_component_count: usize,
}

impl ConnectivityReport {
    /// `true` when `e` is a bridge.
    pub fn is_bridge(&self, e: Edge) -> bool {
        self.bridges.binary_search(&e).is_ok()
    }

    /// `true` when `v` is an articulation point.
    pub fn is_articulation_point(&self, v: Vertex) -> bool {
        self.articulation_points.binary_search(&v).is_ok()
    }

    /// `true` when `u` and `v` survive any single edge failure together (same 2-edge component).
    pub fn same_two_edge_component(&self, u: Vertex, v: Vertex) -> bool {
        self.two_edge_component[u] == self.two_edge_component[v]
    }
}

/// Runs the iterative low-link DFS over all components of `g`.
///
/// Convenience wrapper that freezes `g` and runs [`analyze_connectivity_csr`]; callers that
/// already hold a [`CsrGraph`] should use that entry point directly.
pub fn analyze_connectivity(g: &Graph) -> ConnectivityReport {
    analyze_connectivity_csr(&g.freeze())
}

/// Runs the iterative low-link DFS over all components of the CSR view of a graph.
///
/// Freezing preserves adjacency order, so the report is identical to what the adjacency-list
/// representation produced.
pub fn analyze_connectivity_csr(g: &CsrGraph) -> ConnectivityReport {
    let n = g.vertex_count();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<Vertex>> = vec![None; n];
    let mut timer = 0usize;
    let mut bridges = Vec::new();
    let mut articulation = vec![false; n];

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Iterative DFS: stack of (vertex, index into adjacency list).
        let mut stack: Vec<(Vertex, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&(v, i)) = stack.last() {
            if i < g.degree(v) {
                stack.last_mut().expect("non-empty").1 += 1;
                let w = g.neighbor_row(v)[i] as Vertex;
                // Skip the edge to the DFS parent (graphs are simple, so there is exactly one).
                if parent[v] == Some(w) {
                    continue;
                }
                if disc[w] == usize::MAX {
                    parent[w] = Some(v);
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((w, 0));
                } else {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        bridges.push(Edge::new(p, v));
                    }
                    if p != root && low[v] >= disc[p] {
                        articulation[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            articulation[root] = true;
        }
    }

    bridges.sort_unstable();
    let articulation_points: Vec<Vertex> = (0..n).filter(|&v| articulation[v]).collect();

    // 2-edge-connected components: connected components of G minus the bridges.
    let mut component = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        let mut stack = vec![start];
        component[start] = id;
        while let Some(v) = stack.pop() {
            for w in g.neighbors(v) {
                if component[w] == usize::MAX && bridges.binary_search(&Edge::new(v, w)).is_err() {
                    component[w] = id;
                    stack.push(w);
                }
            }
        }
    }

    ConnectivityReport {
        bridges,
        articulation_points,
        two_edge_component: component,
        two_edge_component_count: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_avoiding_edge;
    use crate::distance::INFINITE_DISTANCE;
    use crate::generators::{connected_gnm, cycle_graph, grid_graph, path_graph, star_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn brute_force_bridges(g: &Graph) -> Vec<Edge> {
        // An edge is a bridge iff removing it disconnects its endpoints.
        g.edges()
            .filter(|&e| {
                let (u, v) = e.endpoints();
                bfs_avoiding_edge(g, u, e).dist[v] == INFINITE_DISTANCE
            })
            .collect()
    }

    #[test]
    fn path_graphs_are_all_bridges() {
        let g = path_graph(7);
        let r = analyze_connectivity(&g);
        assert_eq!(r.bridges.len(), 6);
        assert_eq!(r.articulation_points, vec![1, 2, 3, 4, 5]);
        assert_eq!(r.two_edge_component_count, 7);
        assert!(r.is_bridge(Edge::new(2, 3)));
        assert!(!r.same_two_edge_component(0, 6));
    }

    #[test]
    fn cycles_have_no_bridges() {
        let g = cycle_graph(9);
        let r = analyze_connectivity(&g);
        assert!(r.bridges.is_empty());
        assert!(r.articulation_points.is_empty());
        assert_eq!(r.two_edge_component_count, 1);
        assert!(r.same_two_edge_component(0, 5));
    }

    #[test]
    fn stars_have_a_single_cut_vertex() {
        let g = star_graph(8);
        let r = analyze_connectivity(&g);
        assert_eq!(r.bridges.len(), 7);
        assert_eq!(r.articulation_points, vec![0]);
        assert!(r.is_articulation_point(0));
        assert!(!r.is_articulation_point(3));
    }

    #[test]
    fn barbell_graph_has_one_bridge() {
        // Two triangles connected by a single edge.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .unwrap();
        let r = analyze_connectivity(&g);
        assert_eq!(r.bridges, vec![Edge::new(2, 3)]);
        assert_eq!(r.articulation_points, vec![2, 3]);
        assert_eq!(r.two_edge_component_count, 2);
        assert!(r.same_two_edge_component(0, 2));
        assert!(!r.same_two_edge_component(0, 3));
    }

    #[test]
    fn grids_are_two_edge_connected() {
        let r = analyze_connectivity(&grid_graph(4, 5));
        assert!(r.bridges.is_empty());
        assert_eq!(r.two_edge_component_count, 1);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [12usize, 20, 30] {
            // Sparse enough that bridges are likely.
            let g = connected_gnm(n, n + 3, &mut rng).unwrap();
            let r = analyze_connectivity(&g);
            assert_eq!(r.bridges, brute_force_bridges(&g), "n = {n}");
        }
    }

    #[test]
    fn csr_entry_point_matches_the_graph_one() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = connected_gnm(25, 30, &mut rng).unwrap();
        assert_eq!(analyze_connectivity_csr(&g.freeze()), analyze_connectivity(&g));
    }

    #[test]
    fn disconnected_graphs_are_supported() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let r = analyze_connectivity(&g);
        assert_eq!(r.bridges, vec![Edge::new(3, 4)]);
        assert_eq!(r.two_edge_component_count, 4); // triangle, {3}, {4}, {5}
    }
}
