//! Undirected edge identifiers.

use std::fmt;

use crate::graph::Vertex;

/// An undirected edge, stored with its endpoints in normalized (sorted) order.
///
/// Edges identify the *failure* in a replacement-path query, so they are used pervasively as
/// hash-map keys. Normalizing the endpoint order makes `Edge::new(u, v) == Edge::new(v, u)`.
///
/// ```
/// use msrp_graph::Edge;
/// let e = Edge::new(7, 2);
/// assert_eq!(e, Edge::new(2, 7));
/// assert_eq!(e.endpoints(), (2, 7));
/// assert_eq!(e.other(2), Some(7));
/// assert!(e.is_incident(7));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    lo: Vertex,
    hi: Vertex,
}

impl Edge {
    /// Creates an edge between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the graphs in this workspace are simple and never contain self loops.
    #[inline]
    pub fn new(u: Vertex, v: Vertex) -> Self {
        assert_ne!(u, v, "self loops are not representable as edges");
        if u < v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        }
    }

    /// Returns the endpoints in normalized `(min, max)` order.
    #[inline]
    pub fn endpoints(&self) -> (Vertex, Vertex) {
        (self.lo, self.hi)
    }

    /// Returns the smaller endpoint.
    #[inline]
    pub fn lo(&self) -> Vertex {
        self.lo
    }

    /// Returns the larger endpoint.
    #[inline]
    pub fn hi(&self) -> Vertex {
        self.hi
    }

    /// Returns the endpoint different from `v`, or `None` if `v` is not an endpoint.
    #[inline]
    pub fn other(&self, v: Vertex) -> Option<Vertex> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Returns `true` when `v` is one of the endpoints.
    #[inline]
    pub fn is_incident(&self, v: Vertex) -> bool {
        v == self.lo || v == self.hi
    }

    /// Returns `true` when the two edges share at least one endpoint.
    #[inline]
    pub fn shares_endpoint(&self, other: &Edge) -> bool {
        self.is_incident(other.lo) || self.is_incident(other.hi)
    }

    /// Packs the edge into a single `u64` key, convenient for flat hash maps.
    ///
    /// The packing is injective for graphs with fewer than `2^32` vertices.
    #[inline]
    pub fn as_key(&self) -> u64 {
        ((self.lo as u64) << 32) | self.hi as u64
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo, self.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

impl From<(Vertex, Vertex)> for Edge {
    fn from((u, v): (Vertex, Vertex)) -> Self {
        Edge::new(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn normalization_makes_edges_order_insensitive() {
        assert_eq!(Edge::new(1, 9), Edge::new(9, 1));
        assert_eq!(Edge::new(1, 9).endpoints(), (1, 9));
        assert_eq!(Edge::new(9, 1).endpoints(), (1, 9));
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_panic() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn other_endpoint_lookup() {
        let e = Edge::new(4, 2);
        assert_eq!(e.other(2), Some(4));
        assert_eq!(e.other(4), Some(2));
        assert_eq!(e.other(5), None);
    }

    #[test]
    fn incidence_and_sharing() {
        let e = Edge::new(0, 1);
        let f = Edge::new(1, 2);
        let g = Edge::new(2, 3);
        assert!(e.is_incident(0));
        assert!(e.is_incident(1));
        assert!(!e.is_incident(2));
        assert!(e.shares_endpoint(&f));
        assert!(!e.shares_endpoint(&g));
    }

    #[test]
    fn key_is_injective_on_small_sets() {
        let mut keys = HashSet::new();
        for u in 0..30usize {
            for v in (u + 1)..30usize {
                assert!(keys.insert(Edge::new(u, v).as_key()));
            }
        }
    }

    #[test]
    fn from_tuple_and_formatting() {
        let e: Edge = (5, 3).into();
        assert_eq!(e.endpoints(), (3, 5));
        assert_eq!(format!("{e}"), "3-5");
        assert_eq!(format!("{e:?}"), "(3-5)");
    }

    #[test]
    fn accessors_lo_hi() {
        let e = Edge::new(10, 2);
        assert_eq!(e.lo(), 2);
        assert_eq!(e.hi(), 10);
    }
}
