//! Least common ancestors via Euler tour + sparse-table RMQ (Lemma 6 of the paper,
//! following Bender and Farach-Colton, LATIN 2000).
//!
//! The index is built in `O(n log n)` time and answers queries in `O(1)`. The paper only needs
//! ancestry tests on root-to-vertex paths (answered directly by [`ShortestPathTree`]), but the
//! LCA structure is the general tool Lemma 6 cites and is used by the tree-distance helpers and
//! the network simulator.

use crate::distance::{dist_add, Distance, INFINITE_DISTANCE};
use crate::graph::Vertex;
use crate::tree::ShortestPathTree;

/// Constant-time LCA queries over a [`ShortestPathTree`].
///
/// ```
/// use msrp_graph::{Graph, ShortestPathTree};
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = Graph::from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)])?;
/// let tree = ShortestPathTree::build(&g, 0);
/// let lca = tree.lca_index();
/// assert_eq!(lca.lca(3, 4), Some(1));
/// assert_eq!(lca.lca(3, 6), Some(0));
/// assert_eq!(lca.tree_distance(3, 6), Some(4));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LcaIndex {
    /// Euler tour of the tree (vertices, with repeats).
    euler: Vec<Vertex>,
    /// Depth of each Euler tour entry.
    euler_depth: Vec<u32>,
    /// First occurrence of each vertex in the Euler tour (`usize::MAX` if unreachable).
    first: Vec<usize>,
    /// Sparse table over Euler positions; `table[k][i]` is the position with minimum depth in
    /// the window of length `2^k` starting at `i`.
    table: Vec<Vec<u32>>,
    /// Depth (= BFS distance) per vertex.
    depth: Vec<Distance>,
    root: Vertex,
}

impl LcaIndex {
    /// Builds the index for the reachable part of `tree`.
    pub fn build(tree: &ShortestPathTree) -> Self {
        let n = tree.vertex_count();
        let children = tree.children_of();
        let mut euler = Vec::with_capacity(2 * n);
        let mut euler_depth = Vec::with_capacity(2 * n);
        let mut first = vec![usize::MAX; n];
        let root = tree.source();

        if n > 0 && tree.is_reachable(root) {
            // Iterative Euler tour.
            let mut stack: Vec<(Vertex, usize)> = vec![(root, 0)];
            push_occurrence(&mut euler, &mut euler_depth, &mut first, tree, root);
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                if *idx < children[v].len() {
                    let c = children[v][*idx];
                    *idx += 1;
                    push_occurrence(&mut euler, &mut euler_depth, &mut first, tree, c);
                    stack.push((c, 0));
                } else {
                    stack.pop();
                    if let Some(&(p, _)) = stack.last() {
                        push_occurrence(&mut euler, &mut euler_depth, &mut first, tree, p);
                    }
                }
            }
        }

        let table = build_sparse_table(&euler_depth);
        let depth = tree.distances().to_vec();
        LcaIndex { euler, euler_depth, first, table, depth, root }
    }

    /// Lowest common ancestor of `u` and `v`, or `None` if either is unreachable from the root.
    pub fn lca(&self, u: Vertex, v: Vertex) -> Option<Vertex> {
        let fu = *self.first.get(u)?;
        let fv = *self.first.get(v)?;
        if fu == usize::MAX || fv == usize::MAX {
            return None;
        }
        let (lo, hi) = if fu <= fv { (fu, fv) } else { (fv, fu) };
        let pos = self.range_min_position(lo, hi);
        Some(self.euler[pos])
    }

    /// Distance between `u` and `v` measured *in the tree* (not in the underlying graph).
    pub fn tree_distance(&self, u: Vertex, v: Vertex) -> Option<Distance> {
        let a = self.lca(u, v)?;
        let du = self.depth[u];
        let dv = self.depth[v];
        let da = self.depth[a];
        if du == INFINITE_DISTANCE || dv == INFINITE_DISTANCE || da == INFINITE_DISTANCE {
            return None;
        }
        Some(dist_add(du - da, dv - da))
    }

    /// Returns `true` when `a` is an ancestor of `d` in the tree (every vertex is its own ancestor).
    pub fn is_ancestor(&self, a: Vertex, d: Vertex) -> bool {
        self.lca(a, d) == Some(a)
    }

    /// The root of the underlying tree.
    pub fn root(&self) -> Vertex {
        self.root
    }

    /// Length of the Euler tour (useful for size accounting in experiments).
    pub fn euler_len(&self) -> usize {
        self.euler.len()
    }

    fn range_min_position(&self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi && hi < self.euler_depth.len());
        let len = hi - lo + 1;
        let k = usize::BITS as usize - 1 - (len.leading_zeros() as usize);
        let left = self.table[k][lo] as usize;
        let right = self.table[k][hi + 1 - (1 << k)] as usize;
        if self.euler_depth[left] <= self.euler_depth[right] {
            left
        } else {
            right
        }
    }
}

fn push_occurrence(
    euler: &mut Vec<Vertex>,
    euler_depth: &mut Vec<u32>,
    first: &mut [usize],
    tree: &ShortestPathTree,
    v: Vertex,
) {
    if first[v] == usize::MAX {
        first[v] = euler.len();
    }
    euler.push(v);
    euler_depth.push(tree.distance_or_infinite(v));
}

fn build_sparse_table(depths: &[u32]) -> Vec<Vec<u32>> {
    let n = depths.len();
    if n == 0 {
        return vec![Vec::new()];
    }
    let levels = (usize::BITS as usize) - (n.leading_zeros() as usize);
    let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
    table.push((0..n as u32).collect());
    let mut k = 1;
    while (1 << k) <= n {
        let prev = &table[k - 1];
        let width = 1 << (k - 1);
        let mut row = Vec::with_capacity(n + 1 - (1 << k));
        for i in 0..=(n - (1 << k)) {
            let a = prev[i] as usize;
            let b = prev[i + width] as usize;
            row.push(if depths[a] <= depths[b] { a as u32 } else { b as u32 });
        }
        table.push(row);
        k += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn balanced_tree() -> (Graph, ShortestPathTree) {
        // A complete binary tree on 15 vertices (1-indexed heap layout shifted to 0-index).
        let mut edges = Vec::new();
        for v in 1..15usize {
            edges.push(((v - 1) / 2, v));
        }
        let g = Graph::from_edges(15, &edges).unwrap();
        let t = ShortestPathTree::build(&g, 0);
        (g, t)
    }

    fn naive_lca(t: &ShortestPathTree, u: Vertex, v: Vertex) -> Option<Vertex> {
        let pu = t.path_from_source(u)?;
        let pv = t.path_from_source(v)?;
        let mut last = None;
        for (a, b) in pu.iter().zip(pv.iter()) {
            if a == b {
                last = Some(*a);
            } else {
                break;
            }
        }
        last
    }

    #[test]
    fn matches_naive_lca_on_balanced_tree() {
        let (_, t) = balanced_tree();
        let idx = t.lca_index();
        for u in 0..15 {
            for v in 0..15 {
                assert_eq!(idx.lca(u, v), naive_lca(&t, u, v), "lca({u}, {v})");
            }
        }
    }

    #[test]
    fn matches_naive_lca_on_path() {
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)])
            .unwrap();
        let t = ShortestPathTree::build(&g, 3);
        let idx = t.lca_index();
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(idx.lca(u, v), naive_lca(&t, u, v));
            }
        }
    }

    #[test]
    fn tree_distance_matches_path_lengths() {
        let (_, t) = balanced_tree();
        let idx = t.lca_index();
        assert_eq!(idx.tree_distance(7, 8), Some(2)); // siblings under 3
        assert_eq!(idx.tree_distance(7, 14), Some(6)); // opposite leaves
        assert_eq!(idx.tree_distance(0, 14), Some(3));
        assert_eq!(idx.tree_distance(5, 5), Some(0));
    }

    #[test]
    fn ancestor_queries() {
        let (_, t) = balanced_tree();
        let idx = t.lca_index();
        assert!(idx.is_ancestor(0, 14));
        assert!(idx.is_ancestor(2, 14));
        assert!(!idx.is_ancestor(1, 14));
        assert!(idx.is_ancestor(14, 14));
        assert_eq!(idx.root(), 0);
    }

    #[test]
    fn unreachable_vertices_yield_none() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let t = ShortestPathTree::build(&g, 0);
        let idx = t.lca_index();
        assert_eq!(idx.lca(0, 3), None);
        assert_eq!(idx.lca(3, 4), None);
        assert_eq!(idx.lca(1, 2), Some(1));
        assert_eq!(idx.tree_distance(0, 4), None);
    }

    #[test]
    fn single_vertex_tree() {
        let g = Graph::new(1);
        let t = ShortestPathTree::build(&g, 0);
        let idx = t.lca_index();
        assert_eq!(idx.lca(0, 0), Some(0));
        assert_eq!(idx.tree_distance(0, 0), Some(0));
        assert!(idx.euler_len() >= 1);
    }

    #[test]
    fn lca_on_bfs_tree_of_cyclic_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let t = ShortestPathTree::build(&g, 0);
        let idx = t.lca_index();
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(idx.lca(u, v), naive_lca(&t, u, v));
            }
        }
    }
}
