//! Error types for graph construction and manipulation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or mutating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex index was at least the number of vertices in the graph.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        vertex_count: usize,
    },
    /// An edge connecting a vertex to itself was rejected.
    SelfLoop {
        /// The vertex that appeared on both endpoints.
        vertex: usize,
    },
    /// A duplicate of an existing edge was rejected (the graphs are simple).
    DuplicateEdge {
        /// One endpoint of the duplicate edge.
        u: usize,
        /// The other endpoint of the duplicate edge.
        v: usize,
    },
    /// A request referenced an edge that does not exist in the graph.
    MissingEdge {
        /// One endpoint of the requested edge.
        u: usize,
        /// The other endpoint of the requested edge.
        v: usize,
    },
    /// A generator was asked for an impossible configuration
    /// (for example more edges than a simple graph can hold).
    InvalidParameters {
        /// Human readable description of the problem.
        reason: String,
    },
    /// Raw CSR arrays handed to [`crate::CsrGraph::from_raw_parts`] (or its weighted twin)
    /// failed structural validation — the arrays do not describe a simple undirected graph.
    MalformedCsr {
        /// Human readable description of the structural violation.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, vertex_count } => write!(
                f,
                "vertex {vertex} is out of range for a graph with {vertex_count} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(f, "self loop at vertex {vertex} is not allowed")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge ({u}, {v}) does not exist")
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
            GraphError::MalformedCsr { reason } => {
                write!(f, "malformed CSR arrays: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, vertex_count: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains('3'));
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert!(e.to_string().contains("(1, 2)"));
        let e = GraphError::MissingEdge { u: 4, v: 9 };
        assert!(e.to_string().contains("(4, 9)"));
        let e = GraphError::InvalidParameters { reason: "too many edges".into() };
        assert!(e.to_string().contains("too many edges"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<GraphError>();
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::SelfLoop { vertex: 1 }, GraphError::SelfLoop { vertex: 1 });
        assert_ne!(GraphError::SelfLoop { vertex: 1 }, GraphError::SelfLoop { vertex: 2 });
    }
}
