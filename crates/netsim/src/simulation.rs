//! A seeded single-link-failure simulation (experiment E7).
//!
//! The scenario follows the MPLS-restoration motivation of the replacement-path literature: a
//! network carries traffic from a small set of ingress gateways (the σ sources) to arbitrary
//! destinations; links fail one at a time and are repaired before the next failure (the
//! single-fault model of the paper). On every failure a batch of routing queries must be
//! answered. The simulation answers each query twice — through the precomputed replacement-path
//! oracle and by recomputing a BFS from scratch — and checks that the answers agree, recording
//! wall-clock time spent on each side.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_core::MsrpParams;
use msrp_graph::{
    BfsScratch, DijkstraScratch, Distance, Edge, Graph, Vertex, Weight, WeightedCsrGraph,
    INFINITE_DISTANCE, INFINITE_WEIGHT,
};
use msrp_oracle::{ReplacementPathOracle, WeightedReplacementOracle};

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// The ingress gateways (sources of the oracle).
    pub gateways: Vec<Vertex>,
    /// Number of link failures to inject.
    pub failures: usize,
    /// Number of routing queries issued per failure.
    pub queries_per_failure: usize,
    /// RNG seed (failures and queries are fully determined by it).
    pub seed: u64,
    /// Parameters for the oracle construction.
    pub params: MsrpParams,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            gateways: vec![0],
            failures: 20,
            queries_per_failure: 10,
            seed: 7,
            params: MsrpParams::default(),
        }
    }
}

/// One injected failure and the queries answered under it.
#[derive(Clone, Debug)]
pub struct FailureEvent {
    /// The failed link.
    pub edge: Edge,
    /// `(gateway, destination, distance under failure)` for every query.
    pub answers: Vec<(Vertex, Vertex, Distance)>,
    /// How many of the answered queries lost connectivity entirely.
    pub disconnected: usize,
}

/// Aggregate results of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationReport {
    /// The injected failures, in order.
    pub events: Vec<FailureEvent>,
    /// Total number of routing queries answered.
    pub total_queries: usize,
    /// Queries whose oracle answer differed from recomputation (must be 0 — checked in tests).
    pub mismatches: usize,
    /// Queries that became disconnected under the failure.
    pub disconnected_queries: usize,
    /// Sum over answered queries of `replacement − baseline` (only finite detours).
    pub total_stretch: u64,
    /// Wall-clock time spent constructing the oracle.
    pub oracle_build_time: Duration,
    /// Wall-clock time spent answering queries through the oracle.
    pub oracle_query_time: Duration,
    /// Wall-clock time spent answering the same queries by re-running BFS.
    pub recompute_time: Duration,
}

impl SimulationReport {
    /// Average extra hops caused by a failure, over queries that stayed connected.
    pub fn average_stretch(&self) -> f64 {
        let connected = self.total_queries - self.disconnected_queries;
        if connected == 0 {
            0.0
        } else {
            self.total_stretch as f64 / connected as f64
        }
    }

    /// The headline number of experiments E7/E8: how much faster the precomputed oracle (or
    /// the query service wrapping it) answers the failure workload than recomputing each
    /// answer from scratch (`recompute_time / oracle_query_time`; infinite when querying took
    /// no measurable time).
    pub fn oracle_speedup(&self) -> f64 {
        let o = self.oracle_query_time.as_secs_f64();
        if o == 0.0 {
            f64::INFINITY
        } else {
            self.recompute_time.as_secs_f64() / o
        }
    }

    /// Speed-up of oracle queries over recomputation (alias of
    /// [`oracle_speedup`](Self::oracle_speedup), kept for the original E7 callers).
    pub fn query_speedup(&self) -> f64 {
        self.oracle_speedup()
    }
}

/// Runs the simulation on `g` with the given configuration.
///
/// # Panics
///
/// Panics if the configuration has no gateways or the graph has no edges.
pub fn run_simulation(g: &Graph, config: &SimulationConfig) -> SimulationReport {
    assert!(!config.gateways.is_empty(), "at least one gateway is required");
    assert!(g.edge_count() > 0, "the network must have links");
    let mut rng = StdRng::seed_from_u64(config.seed);

    // One frozen CSR view serves the oracle build and every recomputed answer; the
    // recompute loop reuses one set of BFS buffers across all failures.
    let csr = g.freeze();
    let mut scratch = BfsScratch::new();

    let build_start = Instant::now();
    let oracle = ReplacementPathOracle::build_csr(&csr, &config.gateways, &config.params);
    let oracle_build_time = build_start.elapsed();

    let edges = g.edge_vec();
    let n = g.vertex_count();
    let mut events = Vec::with_capacity(config.failures);
    let mut mismatches = 0;
    let mut disconnected_queries = 0;
    let mut total_stretch = 0u64;
    let mut total_queries = 0;
    let mut oracle_query_time = Duration::ZERO;
    let mut recompute_time = Duration::ZERO;

    for _ in 0..config.failures {
        let edge = edges[rng.gen_range(0..edges.len())];
        let mut answers = Vec::with_capacity(config.queries_per_failure);
        let mut event_disconnected = 0;
        for _ in 0..config.queries_per_failure {
            let gw = config.gateways[rng.gen_range(0..config.gateways.len())];
            let dest = rng.gen_range(0..n);
            total_queries += 1;

            let start = Instant::now();
            let via_oracle =
                oracle.replacement_distance(gw, dest, edge).expect("gateway is a source");
            oracle_query_time += start.elapsed();

            let start = Instant::now();
            scratch.run_avoiding(&csr, gw, edge);
            let recomputed = scratch.dist()[dest];
            recompute_time += start.elapsed();

            if via_oracle != recomputed {
                mismatches += 1;
            }
            if recomputed == INFINITE_DISTANCE {
                event_disconnected += 1;
                disconnected_queries += 1;
            } else if let Some(base) = oracle.distance(gw, dest) {
                total_stretch += (recomputed - base) as u64;
            }
            answers.push((gw, dest, via_oracle));
        }
        events.push(FailureEvent { edge, answers, disconnected: event_disconnected });
    }

    SimulationReport {
        events,
        total_queries,
        mismatches,
        disconnected_queries,
        total_stretch,
        oracle_build_time,
        oracle_query_time,
        recompute_time,
    }
}

/// Runs the same seeded simulation, but routes every per-failure query batch through a
/// [`QueryService`](msrp_serve::QueryService): the oracle shards are built in parallel
/// (`shards` construction workers) and each failure's batch is answered by the service's
/// worker pool instead of by in-process calls.
///
/// The RNG draw order matches [`run_simulation`] exactly, so for a given `config` both
/// entry points inject the same failures and queries — and, because the service is answer-
/// preserving (see the `msrp-serve` property suite), they must produce the same events,
/// stretch, and mismatch counts; only the timing columns differ. `oracle_build_time` covers
/// sharded construction plus service start-up, and `oracle_query_time` covers the full
/// submit → answers round trip including queueing.
///
/// # Panics
///
/// Panics on the same configurations as [`run_simulation`].
pub fn run_simulation_with_service(
    g: &Graph,
    config: &SimulationConfig,
    shards: usize,
    workers: usize,
) -> SimulationReport {
    use msrp_serve::{Query, QueryService, ServiceConfig};

    assert!(!config.gateways.is_empty(), "at least one gateway is required");
    assert!(g.edge_count() > 0, "the network must have links");
    let mut rng = StdRng::seed_from_u64(config.seed);

    let csr = g.freeze();
    let mut scratch = BfsScratch::new();

    let build_start = Instant::now();
    let service = QueryService::build_and_start_csr(
        &csr,
        &config.gateways,
        &config.params,
        shards,
        &ServiceConfig { workers },
    );
    let oracle_build_time = build_start.elapsed();

    let edges = g.edge_vec();
    let n = g.vertex_count();
    let mut events = Vec::with_capacity(config.failures);
    let mut mismatches = 0;
    let mut disconnected_queries = 0;
    let mut total_stretch = 0u64;
    let mut total_queries = 0;
    let mut oracle_query_time = Duration::ZERO;
    let mut recompute_time = Duration::ZERO;

    for _ in 0..config.failures {
        let edge = edges[rng.gen_range(0..edges.len())];
        let batch: Vec<Query> = (0..config.queries_per_failure)
            .map(|_| {
                let gw = config.gateways[rng.gen_range(0..config.gateways.len())];
                let dest = rng.gen_range(0..n);
                Query::new(gw, dest, edge)
            })
            .collect();
        total_queries += batch.len();

        let start = Instant::now();
        let batch_answers = service.answer_batch(&batch);
        oracle_query_time += start.elapsed();

        let mut answers = Vec::with_capacity(batch.len());
        let mut event_disconnected = 0;
        for (q, answer) in batch.iter().zip(batch_answers) {
            let via_service = answer.expect("gateway is a source");

            let start = Instant::now();
            scratch.run_avoiding(&csr, q.source, edge);
            let recomputed = scratch.dist()[q.target];
            recompute_time += start.elapsed();

            if via_service != recomputed {
                mismatches += 1;
            }
            if recomputed == INFINITE_DISTANCE {
                event_disconnected += 1;
                disconnected_queries += 1;
            } else if let Some(base) = service.oracle().distance(q.source, q.target) {
                total_stretch += (recomputed - base) as u64;
            }
            answers.push((q.source, q.target, via_service));
        }
        events.push(FailureEvent { edge, answers, disconnected: event_disconnected });
    }
    service.shutdown();

    SimulationReport {
        events,
        total_queries,
        mismatches,
        disconnected_queries,
        total_stretch,
        oracle_build_time,
        oracle_query_time,
        recompute_time,
    }
}

/// Aggregate results of a *weighted* simulation run ([`run_simulation_weighted`]): the same
/// columns as [`SimulationReport`] under the weighted metric (stretch sums are weighted
/// detour costs, so they live in `u64`).
#[derive(Clone, Debug)]
pub struct WeightedSimulationReport {
    /// Total number of routing queries answered.
    pub total_queries: usize,
    /// Queries whose oracle answer differed from Dijkstra recomputation (must be 0).
    pub mismatches: usize,
    /// Queries that became disconnected under the failure.
    pub disconnected_queries: usize,
    /// Sum over connected queries of `replacement − baseline` weighted cost.
    pub total_stretch: u64,
    /// Wall-clock time spent constructing the weighted oracle.
    pub oracle_build_time: Duration,
    /// Wall-clock time spent answering queries through the oracle.
    pub oracle_query_time: Duration,
    /// Wall-clock time spent answering the same queries by re-running Dijkstra.
    pub recompute_time: Duration,
}

impl WeightedSimulationReport {
    /// Average extra weighted cost caused by a failure, over queries that stayed connected.
    pub fn average_stretch(&self) -> f64 {
        let connected = self.total_queries - self.disconnected_queries;
        if connected == 0 {
            0.0
        } else {
            self.total_stretch as f64 / connected as f64
        }
    }

    /// `recompute_time / oracle_query_time` (infinite when querying took no measurable
    /// time); same headline as [`SimulationReport::oracle_speedup`].
    pub fn oracle_speedup(&self) -> f64 {
        let o = self.oracle_query_time.as_secs_f64();
        if o == 0.0 {
            f64::INFINITY
        } else {
            self.recompute_time.as_secs_f64() / o
        }
    }
}

/// Runs the link-failure simulation over a *weighted* network: the weighted replacement
/// oracle (Dijkstra trees, `msrp_core::solve_msrp_weighted`) against per-failure Dijkstra
/// recomputation. The RNG draw order matches [`run_simulation`], so a weighted and an
/// unweighted run with the same `config` inject the same failure edges and query pairs.
///
/// # Panics
///
/// Panics if the configuration has no gateways or the network has no links.
pub fn run_simulation_weighted(
    g: &WeightedCsrGraph,
    config: &SimulationConfig,
) -> WeightedSimulationReport {
    assert!(!config.gateways.is_empty(), "at least one gateway is required");
    assert!(g.edge_count() > 0, "the network must have links");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scratch = DijkstraScratch::new();

    let build_start = Instant::now();
    let oracle = WeightedReplacementOracle::build(g, &config.gateways);
    let oracle_build_time = build_start.elapsed();

    let edges: Vec<Edge> = g.edge_vec().into_iter().map(|(e, _)| e).collect();
    let n = g.vertex_count();
    let mut mismatches = 0;
    let mut disconnected_queries = 0;
    let mut total_stretch = 0u64;
    let mut total_queries = 0;
    let mut oracle_query_time = Duration::ZERO;
    let mut recompute_time = Duration::ZERO;

    for _ in 0..config.failures {
        let edge = edges[rng.gen_range(0..edges.len())];
        for _ in 0..config.queries_per_failure {
            let gw = config.gateways[rng.gen_range(0..config.gateways.len())];
            let dest = rng.gen_range(0..n);
            total_queries += 1;

            let start = Instant::now();
            let via_oracle: Weight =
                oracle.replacement_distance(gw, dest, edge).expect("gateway is a source");
            oracle_query_time += start.elapsed();

            let start = Instant::now();
            scratch.run_avoiding(g, gw, edge);
            let recomputed = scratch.dist()[dest];
            recompute_time += start.elapsed();

            if via_oracle != recomputed {
                mismatches += 1;
            }
            if recomputed == INFINITE_WEIGHT {
                disconnected_queries += 1;
            } else if let Some(base) = oracle.distance(gw, dest) {
                total_stretch += recomputed - base;
            }
        }
    }

    WeightedSimulationReport {
        total_queries,
        mismatches,
        disconnected_queries,
        total_stretch,
        oracle_build_time,
        oracle_query_time,
        recompute_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, grid_graph, path_graph};
    use rand::rngs::StdRng;

    #[test]
    fn oracle_and_recomputation_always_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = connected_gnm(40, 90, &mut rng).unwrap();
        let config = SimulationConfig {
            gateways: vec![0, 13, 27],
            failures: 25,
            queries_per_failure: 8,
            seed: 11,
            params: MsrpParams::default(),
        };
        let report = run_simulation(&g, &config);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.total_queries, 25 * 8);
        assert_eq!(report.events.len(), 25);
        assert!(report.average_stretch() >= 0.0);
        assert!(report.query_speedup() > 0.0);
        assert!(report.oracle_build_time.as_nanos() > 0);
    }

    #[test]
    fn bridge_failures_report_disconnections() {
        let g = path_graph(12);
        let config = SimulationConfig {
            gateways: vec![0],
            failures: 30,
            queries_per_failure: 4,
            seed: 3,
            params: MsrpParams::default(),
        };
        let report = run_simulation(&g, &config);
        assert_eq!(report.mismatches, 0);
        assert!(report.disconnected_queries > 0, "path graphs disconnect on every failure");
        let per_event: usize = report.events.iter().map(|e| e.disconnected).sum();
        assert_eq!(per_event, report.disconnected_queries);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let g = grid_graph(5, 5);
        let config = SimulationConfig { gateways: vec![0, 24], ..Default::default() };
        let a = run_simulation(&g, &config);
        let b = run_simulation(&g, &config);
        assert_eq!(a.total_queries, b.total_queries);
        assert_eq!(a.total_stretch, b.total_stretch);
        let edges_a: Vec<_> = a.events.iter().map(|e| e.edge).collect();
        let edges_b: Vec<_> = b.events.iter().map(|e| e.edge).collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn service_backed_simulation_matches_the_in_process_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = connected_gnm(36, 80, &mut rng).unwrap();
        let config = SimulationConfig {
            gateways: vec![0, 12, 25],
            failures: 15,
            queries_per_failure: 6,
            seed: 21,
            params: MsrpParams::default(),
        };
        let plain = run_simulation(&g, &config);
        let served = run_simulation_with_service(&g, &config, 2, 3);
        assert_eq!(served.mismatches, 0);
        assert_eq!(served.total_queries, plain.total_queries);
        assert_eq!(served.total_stretch, plain.total_stretch);
        assert_eq!(served.disconnected_queries, plain.disconnected_queries);
        for (a, b) in plain.events.iter().zip(&served.events) {
            assert_eq!(a.edge, b.edge, "same seed must inject the same failures");
            assert_eq!(a.answers, b.answers, "the service must be answer-preserving");
        }
        assert!(served.oracle_speedup() > 0.0);
    }

    #[test]
    fn oracle_speedup_is_the_recompute_to_query_ratio() {
        let report = SimulationReport {
            events: Vec::new(),
            total_queries: 0,
            mismatches: 0,
            disconnected_queries: 0,
            total_stretch: 0,
            oracle_build_time: Duration::ZERO,
            oracle_query_time: Duration::from_millis(2),
            recompute_time: Duration::from_millis(10),
        };
        assert!((report.oracle_speedup() - 5.0).abs() < 1e-9);
        assert_eq!(report.oracle_speedup(), report.query_speedup());
        let zero = SimulationReport { oracle_query_time: Duration::ZERO, ..report };
        assert_eq!(zero.oracle_speedup(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "gateway")]
    fn empty_gateways_panic() {
        let g = grid_graph(3, 3);
        let config = SimulationConfig { gateways: vec![], ..Default::default() };
        let _ = run_simulation(&g, &config);
    }

    #[test]
    fn weighted_oracle_and_recomputation_always_agree() {
        let mut rng = StdRng::seed_from_u64(8);
        let g =
            msrp_graph::generators::weighted_connected_gnm(36, 84, 250, &mut rng).unwrap().freeze();
        let config = SimulationConfig {
            gateways: vec![0, 12, 27],
            failures: 20,
            queries_per_failure: 8,
            seed: 13,
            params: MsrpParams::default(),
        };
        let report = run_simulation_weighted(&g, &config);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.total_queries, 20 * 8);
        assert!(report.average_stretch() >= 0.0);
        assert!(report.oracle_speedup() > 0.0);
        assert!(report.oracle_build_time.as_nanos() > 0);
        // Determinism: the same config replays the same workload.
        let again = run_simulation_weighted(&g, &config);
        assert_eq!(again.total_stretch, report.total_stretch);
        assert_eq!(again.disconnected_queries, report.disconnected_queries);
    }

    #[test]
    fn weighted_bridge_failures_report_disconnections() {
        // A weighted path: every failure disconnects every downstream destination.
        let topo = path_graph(10);
        let mut rng = StdRng::seed_from_u64(3);
        let g = msrp_graph::generators::random_weights(&topo, 40, &mut rng).freeze();
        let config = SimulationConfig {
            gateways: vec![0],
            failures: 25,
            queries_per_failure: 4,
            seed: 5,
            params: MsrpParams::default(),
        };
        let report = run_simulation_weighted(&g, &config);
        assert_eq!(report.mismatches, 0);
        assert!(report.disconnected_queries > 0);
        assert_eq!(report.total_stretch, 0, "paths have no detours, only disconnections");
    }
}
