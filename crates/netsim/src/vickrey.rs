//! Vickrey (VCG) pricing of shortest-path edges.
//!
//! In the path-auction setting (Nisan–Ronen 2001; Hershberger–Suri 2001 — the original
//! motivation for replacement paths), every edge is owned by a selfish agent and the buyer wants
//! to purchase a shortest `s–t` path. The VCG mechanism pays the owner of a purchased edge `e`
//! its *declared cost* plus the marginal value of its presence:
//!
//! ```text
//! payment(e) = |st ⋄ e| − (|st| − w(e))
//! ```
//!
//! For unweighted graphs (`w(e) = 1`) this is `|st ⋄ e| − |st| + 1`, and the *premium* above the
//! declared cost is the detour `|st ⋄ e| − |st|`. Edges whose removal disconnects `t` have
//! unbounded price.

use msrp_graph::{Distance, Edge, Vertex};
use msrp_oracle::ReplacementPathOracle;

/// The VCG payment for one edge of a shortest path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgePrice {
    /// The edge being priced.
    pub edge: Edge,
    /// Position of the edge on the canonical path.
    pub position: usize,
    /// The replacement distance `|st ⋄ e|` (`None` when the failure disconnects `t`).
    pub replacement: Option<Distance>,
    /// The VCG payment `|st ⋄ e| − |st| + 1` (`None` for critical edges — monopoly price).
    pub payment: Option<Distance>,
}

impl EdgePrice {
    /// The premium above the edge's unit cost (`payment − 1`), i.e. the detour length.
    pub fn premium(&self) -> Option<Distance> {
        self.payment.map(|p| p - 1)
    }

    /// `true` when the edge is critical (no replacement path exists).
    pub fn is_critical(&self) -> bool {
        self.payment.is_none()
    }
}

/// Computes the VCG payment of every edge on the canonical shortest path from `s` to `t`.
///
/// Returns `None` when `s` is not one of the oracle's sources or `t` is unreachable.
pub fn vickrey_prices(
    oracle: &ReplacementPathOracle,
    s: Vertex,
    t: Vertex,
) -> Option<Vec<EdgePrice>> {
    let base = oracle.distance(s, t)?;
    let costs = oracle.detour_costs(s, t)?;
    Some(
        costs
            .into_iter()
            .enumerate()
            .map(|(position, (edge, detour))| EdgePrice {
                edge,
                position,
                replacement: detour.map(|d| base + d),
                payment: detour.map(|d| d + 1),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_core::MsrpParams;
    use msrp_graph::generators::{cycle_graph, path_graph};
    use msrp_graph::Graph;

    #[test]
    fn cycle_prices_equal_the_detour_premium() {
        let g = cycle_graph(8);
        let oracle = ReplacementPathOracle::build(&g, &[0], &MsrpParams::default());
        let prices = vickrey_prices(&oracle, 0, 3).unwrap();
        assert_eq!(prices.len(), 3);
        for p in &prices {
            // |st| = 3, |st ⋄ e| = 5, so the payment is 3 and the premium 2.
            assert_eq!(p.replacement, Some(5));
            assert_eq!(p.payment, Some(3));
            assert_eq!(p.premium(), Some(2));
            assert!(!p.is_critical());
        }
    }

    #[test]
    fn bridges_are_critical() {
        let g = path_graph(4);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        let prices = vickrey_prices(&oracle, 0, 3).unwrap();
        assert_eq!(prices.len(), 3);
        assert!(prices.iter().all(|p| p.is_critical()));
        assert!(prices.iter().all(|p| p.replacement.is_none()));
    }

    #[test]
    fn competitive_edges_cost_their_declared_price() {
        // Two parallel length-2 routes: losing an edge of one route costs nothing extra.
        let g = Graph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        let prices = vickrey_prices(&oracle, 0, 3).unwrap();
        for p in &prices {
            assert_eq!(p.payment, Some(1));
            assert_eq!(p.premium(), Some(0));
        }
    }

    #[test]
    fn unknown_sources_and_unreachable_targets() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert!(vickrey_prices(&oracle, 1, 3).is_none());
        assert!(vickrey_prices(&oracle, 0, 3).is_none());
    }
}
