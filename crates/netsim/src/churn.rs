//! The live-churn driver: streams seed-pinned edge failure/repair events at a running
//! epoch-swapping [`QueryService`] while closed-loop query batches keep arriving, and
//! validates every answer against per-epoch ground truth.
//!
//! Each event toggles one edge of the served graph. A background thread rebuilds the
//! post-event oracle through the incremental Bernstein–Karger path
//! ([`ShardedOracle::rebuild_bk_csr`]) and publishes it as a new epoch; meanwhile the driver
//! keeps firing batches at the service. Because every batch is pinned to a single epoch (see
//! `msrp_serve::epoch`), a batch answered during the swap must equal — query for query — the
//! answer set of either the pre-event or the post-event graph; after the rebuild thread is
//! joined, batches must match the post-event graph exactly. The driver recomputes both
//! grounds truth with avoiding-BFS runs and counts a `mismatched_batches` that a correct
//! stack keeps at zero on every seed.
//!
//! With `verify_full` set, every event additionally runs a from-scratch
//! [`ShardedOracle::build_bk_csr`] on the post-event graph and asserts the incremental
//! result equals it shard-for-shard, row-for-row — the differential that makes the epoch
//! publish safe without a validation pass — while timing both paths for the E11 report.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use msrp_graph::{BfsScratch, CsrGraph, Distance, Edge, Graph, Vertex};
use msrp_oracle::RebuildStats;
use msrp_serve::{
    EpochOracle, HistogramSnapshot, Query, QueryService, ServiceConfig, ShardedOracle,
};

/// Configuration of a churn run.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// The service's sources (gateways), sharded across `shards`.
    pub gateways: Vec<Vertex>,
    /// Number of churn events (each toggles one edge: failure or repair).
    pub events: usize,
    /// Query batches fired while each event's rebuild is in flight.
    pub batches_in_flight: usize,
    /// Query batches fired after each event's epoch is published.
    pub batches_settled: usize,
    /// Queries per batch.
    pub batch_size: usize,
    /// Oracle shards.
    pub shards: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Master seed for event and query streams.
    pub seed: u64,
    /// Also run a from-scratch rebuild per event, assert bit-equality with the incremental
    /// result, and time both (E11 and the test suite set this; pure benchmarks may not).
    pub verify_full: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            gateways: vec![0],
            events: 8,
            batches_in_flight: 3,
            batches_settled: 2,
            batch_size: 16,
            shards: 2,
            workers: 2,
            seed: 11,
            verify_full: true,
        }
    }
}

/// Results of a churn run.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Events processed (failures + repairs).
    pub events: usize,
    /// How many of them were repairs (re-adding a previously failed edge).
    pub repairs: usize,
    /// Queries issued across all batches.
    pub total_queries: u64,
    /// Batches whose answers matched *no* single epoch's ground truth (0 for a correct
    /// stack: the headline acceptance number).
    pub mismatched_batches: usize,
    /// Incremental-rebuild work accounting, merged over all events. `sources_total` /
    /// `cuts_total` are exactly the work the full-rebuild baseline does per event.
    pub incremental: RebuildStats,
    /// Wall time spent in incremental rebuilds (sum over events).
    pub incremental_rebuild_time: Duration,
    /// Wall time spent in from-scratch rebuilds (sum; zero unless `verify_full`).
    pub full_rebuild_time: Duration,
    /// Staleness windows (event arrival → epoch published) as recorded by the service.
    pub staleness: HistogramSnapshot,
    /// Rebuild latencies as recorded by the service.
    pub rebuild_latency: HistogramSnapshot,
    /// Epoch id after the last event (== `events`).
    pub final_epoch: u64,
}

impl ChurnReport {
    /// `true` when incremental invalidation did strictly less work than the full-rebuild
    /// baseline over the whole run — the acceptance criterion E11 prints per seed.
    pub fn incremental_win(&self) -> bool {
        self.incremental.strictly_less_than_full()
    }

    /// The rebuild-ladder stage table, one `(rung, sources, wall time)` row per rung in
    /// ladder order (`reuse`, `patch`, `rebuild`) — where the run's rebuild time went, in
    /// the same shape the build profiler reports build stages (E12 prints both).
    pub fn rebuild_stage_table(&self) -> [(&'static str, usize, Duration); 3] {
        self.incremental.rungs()
    }

    /// Renders [`rebuild_stage_table`](Self::rebuild_stage_table) as one aligned line per
    /// rung, for experiment tables and log output.
    pub fn stage_summary(&self) -> String {
        let total = self.incremental.rung_time().max(Duration::from_nanos(1));
        self.rebuild_stage_table()
            .iter()
            .map(|(rung, sources, time)| {
                format!(
                    "{rung:<8} {sources:>6} sources  {time:>12.1?}  {:>5.1}%",
                    100.0 * time.as_secs_f64() / total.as_secs_f64()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Ground truth for one batch under one graph: an avoiding-BFS per query (the same
/// recompute-from-scratch baseline the failure simulation uses).
fn recompute_batch(
    csr: &CsrGraph,
    gateways: &[Vertex],
    batch: &[Query],
    scratch: &mut BfsScratch,
) -> Vec<Option<Distance>> {
    let n = csr.vertex_count();
    batch
        .iter()
        .map(|q| {
            if q.target >= n || q.avoid.hi() >= n || !gateways.contains(&q.source) {
                return None;
            }
            scratch.run_avoiding(csr, q.source, q.avoid);
            Some(scratch.dist()[q.target])
        })
        .collect()
}

/// Draws one seed-pinned query batch: gateway sources, uniform targets, and avoided edges
/// drawn from the *initial* edge set (so queries routinely name currently-failed edges —
/// the interesting case under churn).
fn draw_batch(
    gateways: &[Vertex],
    n: usize,
    edge_pool: &[Edge],
    size: usize,
    rng: &mut StdRng,
) -> Vec<Query> {
    (0..size)
        .map(|_| {
            Query::new(
                gateways[rng.gen_range(0..gateways.len())],
                rng.gen_range(0..n),
                edge_pool[rng.gen_range(0..edge_pool.len())],
            )
        })
        .collect()
}

/// Runs the churn simulation on (a private copy of) `g0`.
///
/// # Panics
///
/// Panics if `g0` has no edges, a gateway is out of range, or — with `verify_full` — the
/// incremental rebuild ever diverges from the from-scratch build (it must not).
pub fn run_churn(g0: &Graph, config: &ChurnConfig) -> ChurnReport {
    assert!(config.events > 0, "a churn run needs at least one event");
    let mut g = g0.clone();
    let n = g.vertex_count();
    let edge_pool = g.edge_vec();
    assert!(!edge_pool.is_empty(), "the served graph must have edges");
    let service = QueryService::start(
        EpochOracle::new(ShardedOracle::build_bk_csr(&g.freeze(), &config.gateways, config.shards)),
        &ServiceConfig { workers: config.workers },
    );
    let metrics = service.shared_metrics();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scratch = BfsScratch::new();
    let mut down: Vec<Edge> = Vec::new();
    let mut repairs = 0usize;
    let mut total_queries = 0u64;
    let mut mismatched_batches = 0usize;
    let mut incremental = RebuildStats::default();
    let mut incremental_rebuild_time = Duration::ZERO;
    let mut full_rebuild_time = Duration::ZERO;
    for _event in 0..config.events {
        // Pick the toggle: repair a failed edge with probability ~1/3 when one exists,
        // otherwise fail a present edge (never the last one).
        let repair = !down.is_empty() && (g.edge_count() <= 1 || rng.gen_range(0..3usize) == 0);
        let e = if repair {
            repairs += 1;
            let e = down.swap_remove(rng.gen_range(0..down.len()));
            let (u, v) = e.endpoints();
            g.add_edge(u, v).unwrap();
            e
        } else {
            let edges = g.edge_vec();
            let e = edges[rng.gen_range(0..edges.len())];
            let (u, v) = e.endpoints();
            g.remove_edge(u, v).unwrap();
            down.push(e);
            e
        };
        let old_epoch = service.oracle().current();
        let pre_csr = {
            // Reconstruct the pre-event graph for ground truth (toggle back temporarily).
            let mut pre = g.clone();
            let (u, v) = e.endpoints();
            if repair {
                pre.remove_edge(u, v).unwrap();
            } else {
                pre.add_edge(u, v).unwrap();
            }
            pre.freeze()
        };
        let post_csr = g.freeze();
        let event_at = Instant::now();
        // Pre-draw the in-flight batches so the RNG stays on the main thread.
        let in_flight: Vec<Vec<Query>> = (0..config.batches_in_flight)
            .map(|_| draw_batch(&config.gateways, n, &edge_pool, config.batch_size, &mut rng))
            .collect();
        let swap_stats = std::thread::scope(|scope| {
            let rebuilder = scope.spawn(|| {
                let rebuild_at = Instant::now();
                let (next, stats) = old_epoch.oracle.rebuild_bk_csr(&post_csr, e);
                let rebuilt_in = rebuild_at.elapsed();
                let epoch = service.oracle().publish(next);
                metrics.record_epoch_swap(epoch.id, event_at.elapsed(), rebuilt_in, &stats);
                (stats, rebuilt_in)
            });
            // Load while the rebuild is in flight: each batch must match one epoch's truth.
            for batch in &in_flight {
                let answers = service.answer_batch(batch);
                total_queries += batch.len() as u64;
                let pre_truth = recompute_batch(&pre_csr, &config.gateways, batch, &mut scratch);
                let matches_pre = answers == pre_truth;
                let matches_post = matches_pre || {
                    let post_truth =
                        recompute_batch(&post_csr, &config.gateways, batch, &mut scratch);
                    answers == post_truth
                };
                if !matches_pre && !matches_post {
                    mismatched_batches += 1;
                }
            }
            rebuilder.join().expect("rebuild thread panicked")
        });
        incremental.merge(&swap_stats.0);
        incremental_rebuild_time += swap_stats.1;
        if config.verify_full {
            let full_at = Instant::now();
            let full = ShardedOracle::build_bk_csr(&post_csr, &config.gateways, config.shards);
            full_rebuild_time += full_at.elapsed();
            let current = service.oracle().current();
            for (inc_shard, full_shard) in current.oracle.shards().iter().zip(full.shards()) {
                assert_eq!(
                    inc_shard.per_source(),
                    full_shard.per_source(),
                    "incremental rebuild diverged from the from-scratch build"
                );
            }
        }
        // Settled load: the swap is published, so answers must match the new graph exactly.
        for _ in 0..config.batches_settled {
            let batch = draw_batch(&config.gateways, n, &edge_pool, config.batch_size, &mut rng);
            let answers = service.answer_batch(&batch);
            total_queries += batch.len() as u64;
            if answers != recompute_batch(&post_csr, &config.gateways, &batch, &mut scratch) {
                mismatched_batches += 1;
            }
        }
    }
    let final_epoch = service.oracle().epoch_id();
    let snapshot = service.shutdown();
    ChurnReport {
        events: config.events,
        repairs,
        total_queries,
        mismatched_batches,
        incremental,
        incremental_rebuild_time,
        full_rebuild_time,
        staleness: snapshot.staleness_window,
        rebuild_latency: snapshot.rebuild_latency,
        final_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, grid_graph};

    #[test]
    fn churn_run_is_exact_on_every_batch() {
        let mut rng = StdRng::seed_from_u64(301);
        let g = connected_gnm(40, 110, &mut rng).unwrap();
        let config = ChurnConfig {
            gateways: vec![0, 13, 26, 39],
            events: 10,
            seed: 302,
            ..ChurnConfig::default()
        };
        let report = run_churn(&g, &config);
        assert_eq!(report.mismatched_batches, 0);
        assert_eq!(report.final_epoch, 10);
        assert_eq!(report.staleness.count, 10);
        assert_eq!(report.rebuild_latency.count, 10);
        assert_eq!(report.total_queries, 10 * 5 * 16);
        assert!(report.incremental_win(), "{:?}", report.incremental);
        // The stage table accounts for every source the ladder touched, and its wall times
        // are bounded by the measured rebuild wall time.
        let table = report.rebuild_stage_table();
        assert_eq!(table.map(|(r, _, _)| r), ["reuse", "patch", "rebuild"]);
        let sources: usize = table.iter().map(|&(_, s, _)| s).sum();
        assert_eq!(sources, report.incremental.sources_total);
        let staged: Duration = table.iter().map(|&(_, _, t)| t).sum();
        assert!(
            staged <= report.incremental_rebuild_time,
            "stage times {staged:?} exceed the rebuild wall {:?}",
            report.incremental_rebuild_time
        );
        let summary = report.stage_summary();
        assert_eq!(summary.lines().count(), 3, "one line per rung:\n{summary}");
        assert!(summary.contains("patch"), "{summary}");
    }

    #[test]
    fn churn_survives_disconnections_on_sparse_graphs() {
        // A grid has bridges after a few removals; disconnected targets must answer ∞,
        // never mismatch, and repairs must restore exactness.
        let config = ChurnConfig {
            gateways: vec![0, 24],
            events: 12,
            batch_size: 12,
            seed: 909,
            ..ChurnConfig::default()
        };
        let report = run_churn(&grid_graph(5, 5), &config);
        assert_eq!(report.mismatched_batches, 0);
        assert_eq!(report.events, 12);
        assert!(report.repairs > 0, "seed 909 must exercise the repair path");
    }

    #[test]
    fn incremental_beats_full_on_multiple_seeds() {
        let mut rng = StdRng::seed_from_u64(311);
        for seed in [1u64, 7, 23] {
            let g = connected_gnm(32, 90, &mut rng).unwrap();
            let config = ChurnConfig {
                gateways: vec![0, 10, 20, 30],
                events: 8,
                seed,
                ..ChurnConfig::default()
            };
            let report = run_churn(&g, &config);
            assert_eq!(report.mismatched_batches, 0, "seed {seed}");
            assert!(report.incremental_win(), "seed {seed}: {:?}", report.incremental);
        }
    }
}
