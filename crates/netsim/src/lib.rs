//! Applications of replacement paths: link-failure recovery simulation and Vickrey pricing.
//!
//! The replacement-path literature the paper builds on is motivated by two applications:
//! restoration of MPLS paths after a link failure (Afek et al., cited as \[1\] in the paper) and
//! Vickrey pricing of edges owned by selfish agents (Hershberger–Suri; Nisan–Ronen). This crate
//! provides both on top of the `msrp-oracle` query interface:
//!
//! * [`vickrey`] — VCG payments for the edges of a shortest path;
//! * [`simulation`] — a seeded single-link-failure simulation comparing oracle-based recovery
//!   against recomputation from scratch (experiment E7);
//! * [`churn`] — the live-churn driver (experiment E11): failure/repair events streamed at a
//!   running epoch-swapping service, with every batch validated against per-epoch ground
//!   truth and incremental rebuilds differentially pinned to from-scratch builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod simulation;
pub mod vickrey;

pub use churn::{run_churn, ChurnConfig, ChurnReport};
pub use simulation::{
    run_simulation, run_simulation_weighted, run_simulation_with_service, FailureEvent,
    SimulationConfig, SimulationReport, WeightedSimulationReport,
};
pub use vickrey::{vickrey_prices, EdgePrice};
