//! Classical replacement-path building blocks and ground-truth baselines.
//!
//! The MSRP paper builds on "the classical result of [Malik–Mittal–Gupta 1989, Hershberger–Suri
//! 2001, Nardelli–Proietti–Widmayer 2003] that can find the replacement path from `s` to `t` in
//! `Õ(m + n)` time" (Section 3). This crate provides:
//!
//! * [`replacement_distance`] / [`single_source_brute_force`] — the exhaustive ground truth
//!   (remove the edge, rerun BFS), used to validate every other algorithm in the workspace;
//! * [`single_pair_replacement_paths`] — the classical `Õ(m + n)` single-pair routine, the
//!   building block the paper invokes for source→landmark replacement paths when `σ = 1`;
//! * [`single_source_via_single_pair`] — the "inefficient algorithm" of Section 3 that runs the
//!   classical routine for every target (`Õ(mn)`), used as the main baseline in the benches;
//! * [`SourceReplacementDistances`] — the output representation shared by all algorithms;
//! * [`compare`] — mismatch reporting between two solutions, used by tests and experiment E3.
//!
//! # Example
//!
//! ```
//! use msrp_graph::{generators::cycle_graph, ShortestPathTree};
//! use msrp_rpath::single_source_brute_force;
//!
//! let g = cycle_graph(6);
//! let tree = ShortestPathTree::build(&g, 0);
//! let truth = single_source_brute_force(&g, &tree);
//! // Avoiding the first edge on the path 0-1-2 forces the path 0-5-4-3-2 of length 4.
//! assert_eq!(truth.get(2, 0), Some(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute_force;
mod compare;
mod distances;
mod most_vital;
mod single_pair;
mod ssrp_baseline;
mod weighted;

pub use brute_force::{
    replacement_distance, single_source_brute_force, single_source_brute_force_csr,
    single_source_brute_force_wave, single_source_brute_force_with_scratch,
};
pub use compare::{compare, ComparisonReport, Mismatch};
pub use distances::SourceReplacementDistances;
pub use most_vital::{
    most_vital_edge, most_vital_edge_csr, most_vital_edges, most_vital_edges_csr, VitalEdge,
};
pub use single_pair::single_pair_replacement_paths;
pub use ssrp_baseline::{single_source_via_single_pair, single_source_via_single_pair_csr};
pub use weighted::{
    replacement_weight, single_source_brute_force_weighted, single_source_brute_force_weighted_csr,
    WeightedReplacementDistances,
};
