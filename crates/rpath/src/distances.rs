//! The output representation shared by every replacement-path algorithm in the workspace.

use msrp_graph::{Distance, Edge, ShortestPathTree, Vertex, INFINITE_DISTANCE};

/// Replacement distances from a single source to every target, indexed by the position of the
/// avoided edge on the canonical (BFS-tree) shortest path.
///
/// For a target `t` at depth `k` in the source's BFS tree, `row(t)` has length `k`; its `i`-th
/// entry is `|st ⋄ e_i|`, the length of the shortest `s–t` path avoiding the `i`-th edge of the
/// canonical path (`INFINITE_DISTANCE` when removing that edge disconnects `t` from `s`).
/// Unreachable targets (and the source itself) have empty rows.
///
/// This matches the problem statement in the paper: replacement paths are only asked for edges
/// *on* the `st` path, and the total output size is `Θ(Σ_t depth(t))`, which is the source of
/// the `σ n²` term in the paper's running time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceReplacementDistances {
    source: Vertex,
    base: Vec<Distance>,
    per_target: Vec<Vec<Distance>>,
}

impl SourceReplacementDistances {
    /// Creates a table with every entry initialised to `INFINITE_DISTANCE`, sized according to
    /// the canonical tree `tree` (which must be rooted at the source).
    pub fn new(tree: &ShortestPathTree) -> Self {
        let n = tree.vertex_count();
        let mut per_target = Vec::with_capacity(n);
        for t in 0..n {
            let len = match tree.distance(t) {
                Some(d) => d as usize,
                None => 0,
            };
            per_target.push(vec![INFINITE_DISTANCE; len]);
        }
        SourceReplacementDistances {
            source: tree.source(),
            base: tree.distances().to_vec(),
            per_target,
        }
    }

    /// Builds the table directly from a flat row stream: row `t` takes the next
    /// `tree.distance(t)` entries (empty for unreachable targets), in vertex order.
    /// The snapshot boot path uses this instead of [`new`](Self::new) followed by
    /// per-entry [`set`](Self::set), which initialised and then overwrote every entry.
    ///
    /// # Panics
    ///
    /// Panics if `flat` does not hold exactly the entries the tree's row shapes
    /// require — callers (the snapshot decoder) prove the total first.
    pub fn from_flat_rows(tree: &ShortestPathTree, flat: &[Distance]) -> Self {
        let n = tree.vertex_count();
        let mut per_target = Vec::with_capacity(n);
        let mut cursor = 0usize;
        for t in 0..n {
            let len = tree.distance(t).map_or(0, |d| d as usize);
            per_target.push(flat[cursor..cursor + len].to_vec());
            cursor += len;
        }
        assert_eq!(cursor, flat.len(), "flat row stream does not match the tree's row shapes");
        SourceReplacementDistances {
            source: tree.source(),
            base: tree.distances().to_vec(),
            per_target,
        }
    }

    /// The source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Number of vertices in the underlying graph.
    pub fn vertex_count(&self) -> usize {
        self.per_target.len()
    }

    /// The ordinary (no-failure) distance from the source to `t`, if `t` is reachable.
    pub fn base_distance(&self, t: Vertex) -> Option<Distance> {
        let d = self.base[t];
        if d == INFINITE_DISTANCE {
            None
        } else {
            Some(d)
        }
    }

    /// The replacement distance avoiding the `i`-th edge of the canonical path to `t`.
    ///
    /// Returns `None` when `i` is out of range for `t` (including unreachable targets); returns
    /// `Some(INFINITE_DISTANCE)` when the entry exists but no replacement path does.
    pub fn get(&self, t: Vertex, i: usize) -> Option<Distance> {
        self.per_target.get(t)?.get(i).copied()
    }

    /// The row of replacement distances for target `t` (may be empty).
    pub fn row(&self, t: Vertex) -> &[Distance] {
        &self.per_target[t]
    }

    /// Sets the entry for `(t, i)` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for `t`.
    pub fn set(&mut self, t: Vertex, i: usize, d: Distance) {
        self.per_target[t][i] = d;
    }

    /// Lowers the entry for `(t, i)` to `d` if `d` is smaller; returns whether it changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for `t`.
    pub fn relax(&mut self, t: Vertex, i: usize, d: Distance) -> bool {
        if d < self.per_target[t][i] {
            self.per_target[t][i] = d;
            true
        } else {
            false
        }
    }

    /// Replacement distance for an arbitrary edge: if `e` lies on the canonical path to `t` the
    /// stored entry is returned, otherwise the failure does not affect the canonical path and
    /// the ordinary distance is returned. This is the query the fault-tolerant oracles expose.
    pub fn distance_avoiding(&self, tree: &ShortestPathTree, t: Vertex, e: Edge) -> Distance {
        match tree.edge_position_on_path(t, e) {
            Some(i) => self.per_target[t][i],
            None => self.base[t],
        }
    }

    /// Total number of `(target, edge)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.per_target.iter().map(|r| r.len()).sum()
    }

    /// Number of entries that are still `INFINITE_DISTANCE`.
    pub fn infinite_entry_count(&self) -> usize {
        self.per_target.iter().map(|r| r.iter().filter(|&&d| d == INFINITE_DISTANCE).count()).sum()
    }

    /// Iterates over `(target, edge_index, distance)` for every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, usize, Distance)> + '_ {
        self.per_target
            .iter()
            .enumerate()
            .flat_map(|(t, row)| row.iter().enumerate().map(move |(i, &d)| (t, i, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{cycle_graph, path_graph};
    use msrp_graph::Graph;

    fn tree_of(g: &Graph, s: Vertex) -> ShortestPathTree {
        ShortestPathTree::build(g, s)
    }

    #[test]
    fn sizes_follow_tree_depths() {
        let g = cycle_graph(7);
        let tree = tree_of(&g, 0);
        let d = SourceReplacementDistances::new(&tree);
        assert_eq!(d.source(), 0);
        assert_eq!(d.vertex_count(), 7);
        assert_eq!(d.row(0).len(), 0);
        assert_eq!(d.row(3).len(), 3);
        assert_eq!(d.row(5).len(), 2);
        assert_eq!(d.entry_count(), 1 + 2 + 3 + 3 + 2 + 1);
        assert_eq!(d.infinite_entry_count(), d.entry_count());
    }

    #[test]
    fn unreachable_targets_have_empty_rows() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let tree = tree_of(&g, 0);
        let d = SourceReplacementDistances::new(&tree);
        assert!(d.row(2).is_empty());
        assert_eq!(d.get(2, 0), None);
        assert_eq!(d.base_distance(2), None);
        assert_eq!(d.base_distance(1), Some(1));
    }

    #[test]
    fn set_relax_and_get() {
        let g = cycle_graph(5);
        let tree = tree_of(&g, 0);
        let mut d = SourceReplacementDistances::new(&tree);
        assert_eq!(d.get(2, 0), Some(INFINITE_DISTANCE));
        d.set(2, 0, 9);
        assert_eq!(d.get(2, 0), Some(9));
        assert!(d.relax(2, 0, 4));
        assert!(!d.relax(2, 0, 7));
        assert_eq!(d.get(2, 0), Some(4));
        assert_eq!(d.get(2, 5), None);
    }

    #[test]
    fn distance_avoiding_off_path_edges_returns_base() {
        let g = cycle_graph(6);
        let tree = tree_of(&g, 0);
        let mut d = SourceReplacementDistances::new(&tree);
        d.set(2, 0, 4);
        d.set(2, 1, 4);
        // Edge (3, 4) is not on the canonical path 0-1-2.
        assert_eq!(d.distance_avoiding(&tree, 2, Edge::new(3, 4)), 2);
        assert_eq!(d.distance_avoiding(&tree, 2, Edge::new(0, 1)), 4);
    }

    #[test]
    fn iterator_covers_every_entry() {
        let g = path_graph(4);
        let tree = tree_of(&g, 0);
        let d = SourceReplacementDistances::new(&tree);
        let entries: Vec<_> = d.iter().collect();
        assert_eq!(entries.len(), d.entry_count());
        assert!(entries.contains(&(3, 2, INFINITE_DISTANCE)));
    }
}
