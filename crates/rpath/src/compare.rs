//! Comparison of two replacement-distance tables (used by the test-suite and experiment E3).

use msrp_graph::{Distance, Vertex, INFINITE_DISTANCE};

use crate::distances::SourceReplacementDistances;

/// A single disagreement between an expected and an actual table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// The target vertex of the disagreeing entry.
    pub target: Vertex,
    /// The index of the avoided edge on the canonical path.
    pub edge_index: usize,
    /// The expected (ground-truth) distance.
    pub expected: Distance,
    /// The actual (algorithm-under-test) distance.
    pub actual: Distance,
}

/// Summary of a comparison between two tables with the same source and shape.
#[derive(Clone, Debug, Default)]
pub struct ComparisonReport {
    /// Total number of entries compared.
    pub total_entries: usize,
    /// Entries where the two tables disagree.
    pub mismatches: Vec<Mismatch>,
    /// Number of entries where the actual value is *smaller* than expected (an under-estimate
    /// would mean the algorithm reported a path that cannot exist — always a bug).
    pub under_estimates: usize,
    /// Number of entries where the actual value is larger than expected (for the randomized
    /// algorithm this is the low-probability failure mode).
    pub over_estimates: usize,
}

impl ComparisonReport {
    /// `true` when the tables agree on every entry.
    pub fn is_exact(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Fraction of entries that agree (1.0 for an empty table).
    pub fn agreement_ratio(&self) -> f64 {
        if self.total_entries == 0 {
            1.0
        } else {
            (self.total_entries - self.mismatches.len()) as f64 / self.total_entries as f64
        }
    }
}

/// Compares `actual` against `expected` entry by entry.
///
/// # Panics
///
/// Panics if the two tables have different sources or different shapes (they must be built from
/// the same canonical tree).
pub fn compare(
    expected: &SourceReplacementDistances,
    actual: &SourceReplacementDistances,
) -> ComparisonReport {
    assert_eq!(expected.source(), actual.source(), "tables have different sources");
    assert_eq!(
        expected.vertex_count(),
        actual.vertex_count(),
        "tables cover different vertex counts"
    );
    let mut report = ComparisonReport::default();
    for t in 0..expected.vertex_count() {
        let er = expected.row(t);
        let ar = actual.row(t);
        assert_eq!(er.len(), ar.len(), "row length mismatch for target {t}");
        for (i, (&e, &a)) in er.iter().zip(ar.iter()).enumerate() {
            report.total_entries += 1;
            if e != a {
                if a < e || (e == INFINITE_DISTANCE && a != INFINITE_DISTANCE) {
                    report.under_estimates += 1;
                } else {
                    report.over_estimates += 1;
                }
                report.mismatches.push(Mismatch {
                    target: t,
                    edge_index: i,
                    expected: e,
                    actual: a,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::single_source_brute_force;
    use msrp_graph::generators::cycle_graph;
    use msrp_graph::ShortestPathTree;

    #[test]
    fn identical_tables_are_exact() {
        let g = cycle_graph(8);
        let tree = ShortestPathTree::build(&g, 0);
        let a = single_source_brute_force(&g, &tree);
        let b = a.clone();
        let report = compare(&a, &b);
        assert!(report.is_exact());
        assert_eq!(report.agreement_ratio(), 1.0);
        assert_eq!(report.total_entries, a.entry_count());
    }

    #[test]
    fn over_and_under_estimates_are_classified() {
        let g = cycle_graph(8);
        let tree = ShortestPathTree::build(&g, 0);
        let expected = single_source_brute_force(&g, &tree);
        let mut actual = expected.clone();
        // An over-estimate (worse path) and an under-estimate (impossible path).
        actual.set(3, 0, expected.get(3, 0).unwrap() + 2);
        actual.set(2, 1, 1);
        let report = compare(&expected, &actual);
        assert_eq!(report.mismatches.len(), 2);
        assert_eq!(report.over_estimates, 1);
        assert_eq!(report.under_estimates, 1);
        assert!(!report.is_exact());
        assert!(report.agreement_ratio() < 1.0);
        assert!(report.mismatches.iter().any(|m| m.target == 3 && m.edge_index == 0));
    }

    #[test]
    #[should_panic(expected = "different sources")]
    fn mismatched_sources_panic() {
        let g = cycle_graph(6);
        let a = single_source_brute_force(&g, &ShortestPathTree::build(&g, 0));
        let b = single_source_brute_force(&g, &ShortestPathTree::build(&g, 1));
        let _ = compare(&a, &b);
    }
}
