//! The "inefficient algorithm" of Section 3: run the classical single-pair routine for every
//! target, giving `Õ(mn)` total time.
//!
//! This is the strongest *simple* baseline for the single-source problem and the one the paper's
//! `Õ(m√n + n²)` algorithm is designed to beat; experiment E1 plots both.

use msrp_graph::{BfsScratch, CsrGraph, Graph, ShortestPathTree};

use crate::distances::SourceReplacementDistances;
use crate::single_pair::single_pair_replacement_paths;

/// Computes all single-source replacement paths by invoking the classical `Õ(m + n)` single-pair
/// routine once per target (`Õ(mn)` total). Freezes `g` once and runs
/// [`single_source_via_single_pair_csr`] over the CSR view.
pub fn single_source_via_single_pair(
    g: &Graph,
    tree: &ShortestPathTree,
) -> SourceReplacementDistances {
    single_source_via_single_pair_csr(&g.freeze(), tree)
}

/// CSR entry point of [`single_source_via_single_pair`]: the per-target BFS runs through one
/// shared [`BfsScratch`], so the `Õ(mn)` loop performs no per-target allocation.
pub fn single_source_via_single_pair_csr(
    g: &CsrGraph,
    tree: &ShortestPathTree,
) -> SourceReplacementDistances {
    let mut scratch = BfsScratch::new();
    let mut out = SourceReplacementDistances::new(tree);
    for t in 0..g.vertex_count() {
        if t == tree.source() || !tree.is_reachable(t) {
            continue;
        }
        scratch.run(g, t);
        let row = single_pair_replacement_paths(g, tree, t, scratch.dist());
        for (i, &d) in row.iter().enumerate() {
            out.set(t, i, d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::single_source_brute_force;
    use crate::compare::compare;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, torus_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_matches_truth(g: &Graph, s: usize) {
        let tree = ShortestPathTree::build(g, s);
        let truth = single_source_brute_force(g, &tree);
        let fast = single_source_via_single_pair(g, &tree);
        let report = compare(&truth, &fast);
        assert!(
            report.is_exact(),
            "mismatches: {:?}",
            &report.mismatches[..report.mismatches.len().min(5)]
        );
    }

    #[test]
    fn matches_truth_on_structured_graphs() {
        assert_matches_truth(&cycle_graph(11), 0);
        assert_matches_truth(&grid_graph(4, 5), 2);
        assert_matches_truth(&torus_graph(4, 4), 5);
    }

    #[test]
    fn matches_truth_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [15usize, 25, 40] {
            let g = connected_gnm(n, 2 * n, &mut rng).unwrap();
            assert_matches_truth(&g, 0);
            assert_matches_truth(&g, n / 2);
        }
    }

    #[test]
    fn disconnected_components_are_skipped() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_via_single_pair(&g, &tree);
        assert!(out.row(3).is_empty());
        assert!(out.row(5).is_empty());
        assert_eq!(out.get(2, 0), Some(2));
    }
}
