//! Weighted replacement-path ground truth: remove the edge, rerun Dijkstra.
//!
//! The weighted mirror of [`brute_force`](crate::brute_force) and
//! [`distances`](crate::distances): [`WeightedReplacementDistances`] stores per-target rows
//! indexed by the position of the avoided edge on the canonical (Dijkstra-tree) path, and
//! [`single_source_brute_force_weighted`] fills them with one edge-avoiding Dijkstra per
//! tree edge. Everything the weighted solver in `msrp-core` produces is validated against
//! these routines bit-for-bit.

use msrp_graph::{
    DijkstraScratch, Edge, Vertex, Weight, WeightedCsrGraph, WeightedTree, INFINITE_WEIGHT,
};

/// Weighted replacement distances from a single source to every target, indexed by the
/// position of the avoided edge on the canonical Dijkstra-tree path.
///
/// For a target `t` at hop depth `k` in the source's tree, `row(t)` has length `k`; its
/// `i`-th entry is `|st ⋄ e_i|` under the weighted metric (`INFINITE_WEIGHT` when removing
/// that edge disconnects `t`). Unreachable targets and the source itself have empty rows.
/// This is the weighted twin of
/// [`SourceReplacementDistances`](crate::SourceReplacementDistances) — the only structural
/// difference is that row lengths follow hop *depth*, which is no longer equal to distance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedReplacementDistances {
    source: Vertex,
    base: Vec<Weight>,
    per_target: Vec<Vec<Weight>>,
}

impl WeightedReplacementDistances {
    /// Creates a table with every entry initialised to `INFINITE_WEIGHT`, sized according to
    /// the canonical tree `tree` (which must be rooted at the source).
    pub fn new(tree: &WeightedTree) -> Self {
        let n = tree.vertex_count();
        let mut per_target = Vec::with_capacity(n);
        for t in 0..n {
            per_target.push(vec![INFINITE_WEIGHT; tree.depth(t)]);
        }
        WeightedReplacementDistances {
            source: tree.source(),
            base: tree.distances().to_vec(),
            per_target,
        }
    }

    /// Builds the table directly from a flat row stream: row `t` takes the next
    /// `tree.depth(t)` entries, in vertex order — the weighted mirror of
    /// [`SourceReplacementDistances::from_flat_rows`](crate::SourceReplacementDistances::from_flat_rows).
    ///
    /// # Panics
    ///
    /// Panics if `flat` does not hold exactly the entries the tree's row shapes
    /// require — callers (the snapshot decoder) prove the total first.
    pub fn from_flat_rows(tree: &WeightedTree, flat: &[Weight]) -> Self {
        let n = tree.vertex_count();
        let mut per_target = Vec::with_capacity(n);
        let mut cursor = 0usize;
        for t in 0..n {
            let len = tree.depth(t);
            per_target.push(flat[cursor..cursor + len].to_vec());
            cursor += len;
        }
        assert_eq!(cursor, flat.len(), "flat row stream does not match the tree's row shapes");
        WeightedReplacementDistances {
            source: tree.source(),
            base: tree.distances().to_vec(),
            per_target,
        }
    }

    /// The source vertex.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// Number of vertices in the underlying graph.
    pub fn vertex_count(&self) -> usize {
        self.per_target.len()
    }

    /// The ordinary (no-failure) weighted distance to `t`, if `t` is reachable.
    pub fn base_distance(&self, t: Vertex) -> Option<Weight> {
        let d = self.base[t];
        if d == INFINITE_WEIGHT {
            None
        } else {
            Some(d)
        }
    }

    /// The replacement distance avoiding the `i`-th edge of the canonical path to `t`.
    ///
    /// Returns `None` when `i` is out of range for `t` (including unreachable targets);
    /// returns `Some(INFINITE_WEIGHT)` when the entry exists but no replacement path does.
    pub fn get(&self, t: Vertex, i: usize) -> Option<Weight> {
        self.per_target.get(t)?.get(i).copied()
    }

    /// The row of replacement distances for target `t` (may be empty).
    pub fn row(&self, t: Vertex) -> &[Weight] {
        &self.per_target[t]
    }

    /// Sets the entry for `(t, i)` unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for `t`.
    pub fn set(&mut self, t: Vertex, i: usize, d: Weight) {
        self.per_target[t][i] = d;
    }

    /// Lowers the entry for `(t, i)` to `d` if `d` is smaller; returns whether it changed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for `t`.
    pub fn relax(&mut self, t: Vertex, i: usize, d: Weight) -> bool {
        if d < self.per_target[t][i] {
            self.per_target[t][i] = d;
            true
        } else {
            false
        }
    }

    /// Replacement distance for an arbitrary edge: the stored entry when `e` lies on the
    /// canonical path to `t`, the ordinary distance otherwise (the failure then cannot
    /// affect the canonical path). The query the weighted oracle exposes.
    pub fn distance_avoiding(&self, tree: &WeightedTree, t: Vertex, e: Edge) -> Weight {
        match tree.edge_position_on_path(t, e) {
            Some(i) => self.per_target[t][i],
            None => self.base[t],
        }
    }

    /// Total number of `(target, edge)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.per_target.iter().map(|r| r.len()).sum()
    }

    /// Number of entries that are still `INFINITE_WEIGHT`.
    pub fn infinite_entry_count(&self) -> usize {
        self.per_target.iter().map(|r| r.iter().filter(|&&d| d == INFINITE_WEIGHT).count()).sum()
    }

    /// Iterates over `(target, edge_index, distance)` for every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = (Vertex, usize, Weight)> + '_ {
        self.per_target
            .iter()
            .enumerate()
            .flat_map(|(t, row)| row.iter().enumerate().map(move |(i, &d)| (t, i, d)))
    }
}

/// The weighted replacement distance `|st ⋄ e|` computed by a single Dijkstra in `G \ {e}`.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range.
pub fn replacement_weight(g: &WeightedCsrGraph, s: Vertex, t: Vertex, e: Edge) -> Weight {
    g.dijkstra_avoiding_edge(s, e).dist[t]
}

/// Ground-truth weighted single-source replacement paths: one edge-avoiding Dijkstra per
/// tree edge, distributed to every target whose canonical path uses that edge (the weighted
/// twin of [`single_source_brute_force_csr`](crate::single_source_brute_force_csr);
/// allocates one private scratch).
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force_weighted_csr(
    g: &WeightedCsrGraph,
    tree: &WeightedTree,
) -> WeightedReplacementDistances {
    let mut scratch = DijkstraScratch::new();
    single_source_brute_force_weighted(g, tree, &mut scratch)
}

/// The weighted brute-force inner loop, running every edge-avoiding Dijkstra through the
/// caller's [`DijkstraScratch`] (what `msrp-oracle::WeightedReplacementOracle::build_exact`
/// runs per source).
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force_weighted(
    g: &WeightedCsrGraph,
    tree: &WeightedTree,
    scratch: &mut DijkstraScratch,
) -> WeightedReplacementDistances {
    let n = g.vertex_count();
    let s = tree.source();
    assert!(s < n, "tree root out of range for the graph");
    let mut out = WeightedReplacementDistances::new(tree);
    // Every edge on some canonical path is a tree edge (p, c); its position on the path to
    // any affected target is depth(c) - 1, and the affected targets are exactly the
    // descendants of c.
    for c in 0..n {
        let p = match tree.parent(c) {
            Some(p) => p,
            None => continue,
        };
        let e = Edge::new(p, c);
        let pos = tree.depth(c) - 1;
        scratch.run_avoiding(g, s, e);
        for (t, &d) in scratch.dist().iter().enumerate() {
            if tree.is_reachable(t) && tree.is_ancestor(c, t) {
                out.set(t, pos, d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::cycle_graph;
    use msrp_graph::WeightedGraph;

    /// A weighted 6-cycle with per-edge weights 1..=6 (edge {i, i+1} has weight i + 1).
    fn weighted_cycle() -> WeightedGraph {
        let mut g = WeightedGraph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6, (i + 1) as Weight).unwrap();
        }
        g
    }

    #[test]
    fn cycle_replacements_take_the_complementary_arc() {
        let g = weighted_cycle().freeze();
        let tree = WeightedTree::build(&g, 0);
        let out = single_source_brute_force_weighted_csr(&g, &tree);
        // d(0, 2) = 1 + 2 = 3 via 0-1-2; avoiding either path edge forces the arc
        // 0-5-4-3-2 of weight 6 + 5 + 4 + 3 = 18.
        assert_eq!(tree.distance(2), Some(3));
        assert_eq!(out.get(2, 0), Some(18));
        assert_eq!(out.get(2, 1), Some(18));
        assert_eq!(out.get(2, 2), None);
        // The same values fall out of the one-shot helper.
        assert_eq!(replacement_weight(&g, 0, 2, Edge::new(0, 1)), 18);
        assert_eq!(replacement_weight(&g, 0, 2, Edge::new(3, 4)), 3);
    }

    #[test]
    fn bridges_have_no_weighted_replacement() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 2).unwrap();
        g.add_edge(1, 2, 3).unwrap();
        g.add_edge(2, 3, 4).unwrap();
        let csr = g.freeze();
        let tree = WeightedTree::build(&csr, 0);
        let out = single_source_brute_force_weighted_csr(&csr, &tree);
        for t in 1..4 {
            for i in 0..out.row(t).len() {
                assert_eq!(out.get(t, i), Some(INFINITE_WEIGHT));
            }
        }
        assert_eq!(out.infinite_entry_count(), out.entry_count());
        assert_eq!(out.entry_count(), 1 + 2 + 3);
    }

    #[test]
    fn distance_avoiding_matches_per_query_recomputation() {
        let g = weighted_cycle().freeze();
        let tree = WeightedTree::build(&g, 0);
        let out = single_source_brute_force_weighted_csr(&g, &tree);
        for t in 0..6 {
            for (e, _) in g.edge_vec() {
                assert_eq!(
                    out.distance_avoiding(&tree, t, e),
                    replacement_weight(&g, 0, t, e),
                    "t={t} e={e}"
                );
            }
        }
    }

    #[test]
    fn unit_weights_agree_with_the_unweighted_brute_force() {
        let topo = cycle_graph(8);
        let weighted = WeightedGraph::from_graph(&topo, |_| 1).freeze();
        let wtree = WeightedTree::build(&weighted, 0);
        let wout = single_source_brute_force_weighted_csr(&weighted, &wtree);
        let utree = msrp_graph::ShortestPathTree::build(&topo, 0);
        let uout = crate::single_source_brute_force(&topo, &utree);
        for t in 0..8 {
            assert_eq!(wout.row(t).len(), uout.row(t).len(), "t={t}");
            for i in 0..wout.row(t).len() {
                let w = wout.get(t, i).unwrap();
                let u = uout.get(t, i).unwrap();
                if u == msrp_graph::INFINITE_DISTANCE {
                    assert_eq!(w, INFINITE_WEIGHT);
                } else {
                    assert_eq!(w, u as Weight, "t={t} i={i}");
                }
            }
        }
    }

    #[test]
    fn table_accessors_and_relaxation() {
        let g = weighted_cycle().freeze();
        let tree = WeightedTree::build(&g, 0);
        let mut d = WeightedReplacementDistances::new(&tree);
        assert_eq!(d.source(), 0);
        assert_eq!(d.vertex_count(), 6);
        assert_eq!(d.base_distance(2), Some(3));
        assert_eq!(d.get(2, 0), Some(INFINITE_WEIGHT));
        d.set(2, 0, 20);
        assert!(d.relax(2, 0, 18));
        assert!(!d.relax(2, 0, 19));
        assert_eq!(d.get(2, 0), Some(18));
        assert_eq!(d.get(2, 9), None);
        assert_eq!(d.iter().count(), d.entry_count());
    }
}
