//! The *k most vital arcs* problem (Malik, Mittal and Gupta, Operations Research Letters 1989 —
//! the classical paper the MSRP result builds on).
//!
//! The most vital edge of an `s–t` pair is the edge on the shortest path whose failure increases
//! the distance the most; the `k` most vital edges are the top-`k` by that criterion. With the
//! single-pair replacement distances in hand the answer is a sort, so this module is a thin,
//! well-tested layer over [`crate::single_pair_replacement_paths`].

use msrp_graph::{
    bfs_csr, CsrGraph, Distance, Edge, Graph, ShortestPathTree, Vertex, INFINITE_DISTANCE,
};

use crate::single_pair::single_pair_replacement_paths;

/// One edge of the shortest path ranked by how much its failure hurts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VitalEdge {
    /// The edge.
    pub edge: Edge,
    /// Its position on the canonical path.
    pub position: usize,
    /// The replacement distance when it fails (`INFINITE_DISTANCE` when it is a bridge).
    pub replacement_distance: Distance,
}

impl VitalEdge {
    /// The increase over the fault-free distance, or `None` for bridges.
    pub fn damage(&self, base: Distance) -> Option<Distance> {
        if self.replacement_distance == INFINITE_DISTANCE {
            None
        } else {
            Some(self.replacement_distance - base)
        }
    }
}

/// Returns the edges of the canonical `s–t` path sorted from most to least vital
/// (bridges first, then by decreasing replacement distance; ties broken by path position).
///
/// Returns an empty vector when `t` is unreachable from the tree's source or equals it.
/// Convenience wrapper that freezes `g` and calls [`most_vital_edges_csr`]; callers ranking
/// many targets should freeze once themselves.
pub fn most_vital_edges(g: &Graph, tree: &ShortestPathTree, t: Vertex) -> Vec<VitalEdge> {
    most_vital_edges_csr(&g.freeze(), tree, t)
}

/// CSR entry point of [`most_vital_edges`].
pub fn most_vital_edges_csr(g: &CsrGraph, tree: &ShortestPathTree, t: Vertex) -> Vec<VitalEdge> {
    let dist_to_t = bfs_csr(g, t).dist;
    let replacements = single_pair_replacement_paths(g, tree, t, &dist_to_t);
    let mut out: Vec<VitalEdge> = tree
        .path_edges(t)
        .into_iter()
        .enumerate()
        .map(|(position, edge)| VitalEdge {
            edge,
            position,
            replacement_distance: replacements.get(position).copied().unwrap_or(INFINITE_DISTANCE),
        })
        .collect();
    out.sort_by(|a, b| {
        b.replacement_distance.cmp(&a.replacement_distance).then(a.position.cmp(&b.position))
    });
    out
}

/// The single most vital edge of the `s–t` pair, if the path has any edge.
pub fn most_vital_edge(g: &Graph, tree: &ShortestPathTree, t: Vertex) -> Option<VitalEdge> {
    most_vital_edges(g, tree, t).into_iter().next()
}

/// CSR entry point of [`most_vital_edge`].
pub fn most_vital_edge_csr(g: &CsrGraph, tree: &ShortestPathTree, t: Vertex) -> Option<VitalEdge> {
    most_vital_edges_csr(g, tree, t).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bridges_rank_first() {
        // A triangle 0-1-2 followed by a bridge 2-3: the bridge must be the most vital edge on
        // the path from 0 to 3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let vital = most_vital_edges(&g, &tree, 3);
        assert_eq!(vital[0].edge, Edge::new(2, 3));
        assert_eq!(vital[0].replacement_distance, INFINITE_DISTANCE);
        assert_eq!(vital[0].damage(2), None);
        assert_eq!(most_vital_edge(&g, &tree, 3).unwrap().edge, Edge::new(2, 3));
    }

    #[test]
    fn cycle_edges_are_equally_vital() {
        let g = cycle_graph(10);
        let tree = ShortestPathTree::build(&g, 0);
        let vital = most_vital_edges(&g, &tree, 4);
        assert_eq!(vital.len(), 4);
        assert!(vital.iter().all(|v| v.replacement_distance == 6));
        assert!(vital.iter().all(|v| v.damage(4) == Some(2)));
        // Ties are broken by path position.
        assert_eq!(vital[0].position, 0);
        assert_eq!(vital[3].position, 3);
    }

    #[test]
    fn path_graphs_are_all_bridges() {
        let g = path_graph(5);
        let tree = ShortestPathTree::build(&g, 0);
        let vital = most_vital_edges(&g, &tree, 4);
        assert_eq!(vital.len(), 4);
        assert!(vital.iter().all(|v| v.replacement_distance == INFINITE_DISTANCE));
    }

    #[test]
    fn unreachable_targets_have_no_vital_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        assert!(most_vital_edges(&g, &tree, 3).is_empty());
        assert!(most_vital_edge(&g, &tree, 3).is_none());
        assert!(most_vital_edge(&g, &tree, 0).is_none());
    }

    #[test]
    fn csr_entry_points_match_the_graph_ones() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = connected_gnm(30, 60, &mut rng).unwrap();
        let csr = g.freeze();
        let tree = ShortestPathTree::build(&g, 0);
        for t in 1..30 {
            assert_eq!(most_vital_edges_csr(&csr, &tree, t), most_vital_edges(&g, &tree, t));
        }
        assert_eq!(most_vital_edge_csr(&csr, &tree, 5), most_vital_edge(&g, &tree, 5));
    }

    #[test]
    fn ranking_agrees_with_replacement_distances() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = connected_gnm(30, 60, &mut rng).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        for t in 1..30 {
            let vital = most_vital_edges(&g, &tree, t);
            for pair in vital.windows(2) {
                assert!(pair[0].replacement_distance >= pair[1].replacement_distance);
            }
            for v in &vital {
                let truth = crate::replacement_distance(&g, 0, t, v.edge);
                assert_eq!(v.replacement_distance, truth);
            }
        }
    }
}
