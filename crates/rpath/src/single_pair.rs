//! The classical `Õ(m + n)` single-pair replacement-path routine for undirected unweighted
//! graphs (Malik–Mittal–Gupta 1989; Hershberger–Suri 2001; Nardelli–Proietti–Widmayer 2003).
//!
//! # The cut formula
//!
//! Fix a source `s`, a target `t`, the BFS tree `T_s` and the canonical path
//! `P = v_0 v_1 … v_k` (`v_0 = s`, `v_k = t`). For the `i`-th path edge `e_i = (v_i, v_{i+1})`
//! let `S_i` be the component of `T_s \ {e_i}` containing `s`. Then
//!
//! ```text
//! |st ⋄ e_i| = min { d(s, x) + 1 + d(y, t) :  (x, y) ∈ E \ {e_i},  x ∈ S_i,  y ∉ S_i }.
//! ```
//!
//! *Lower bound direction.* Any `e_i`-avoiding `s–t` path starts in `S_i` and ends outside it
//! (the tree path to `t` uses `e_i`), so it crosses the cut at some edge `(x, y) ≠ e_i`; its
//! length is at least `d(s, x) + 1 + d(y, t)`.
//!
//! *Upper bound direction.* For the minimising `(x, y)`: the tree path `s → x` avoids `e_i`
//! (that is what `x ∈ S_i` means) and has length `d(s, x)`. It remains to argue that *some*
//! shortest `y–t` path avoids `e_i`. Suppose every shortest `y–t` path used `e_i`. Orientation
//! `v_{i+1} → v_i` is impossible: it would give `d(y, t) = d(y, v_{i+1}) + 1 + (k - i)` while the
//! triangle inequality gives `d(y, t) ≤ d(y, v_{i+1}) + (k - i - 1)`. Orientation
//! `v_i → v_{i+1}` forces `d(y, v_{i+1}) = d(y, v_i) + 1`; writing `ℓ` for the length of the tree
//! path from `v_{i+1}` down to `y` (so `d(s, y) = i + 1 + ℓ` and `d(y, v_{i+1}) = ℓ`) we get
//! `d(y, v_i) = ℓ - 1` and hence `d(s, y) ≤ d(s, v_i) + d(v_i, y) = i + ℓ - 1 < i + 1 + ℓ`,
//! a contradiction. Hence the concatenation is an `e_i`-avoiding walk of the claimed length.
//!
//! # The sweep
//!
//! For every vertex `x` let `a(x)` be the *branch index*: the index of the last path vertex on
//! the tree path from `s` to `x`. Then `x ∈ S_i ⇔ i ≥ a(x)`, so an edge `(x, y)` is a crossing
//! edge exactly for `i ∈ [a(x), a(y) - 1]` (in that orientation). Every edge therefore
//! contributes one candidate value to one contiguous interval of positions per orientation, and
//! a single sweep with a multiset of active values answers all `k` positions in
//! `O((m + k) log m)` time.

use std::collections::BTreeMap;

use msrp_graph::{dist_add, CsrGraph, Distance, ShortestPathTree, Vertex, INFINITE_DISTANCE};

/// Computes `|st ⋄ e_i|` for every edge `e_i` on the canonical path from the tree root to `t`.
///
/// * `g` — the frozen CSR view of the graph (freeze once with
///   [`Graph::freeze`](msrp_graph::Graph::freeze) and amortize over many targets);
/// * `tree` — the BFS tree of the source (`T_s`), which defines the canonical path;
/// * `dist_to_t` — BFS distances *from `t`* to every vertex (undirected, so these equal the
///   distances *to* `t`).
///
/// Returns a vector of length `d(s, t)` (empty when `t` is unreachable or equals the source);
/// entry `i` is `INFINITE_DISTANCE` when removing `e_i` disconnects `t` from `s`.
///
/// # Panics
///
/// Panics if `dist_to_t` has the wrong length.
pub fn single_pair_replacement_paths(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    t: Vertex,
    dist_to_t: &[Distance],
) -> Vec<Distance> {
    let n = g.vertex_count();
    assert_eq!(dist_to_t.len(), n, "dist_to_t must have one entry per vertex");
    let path = match tree.path_from_source(t) {
        Some(p) if p.len() >= 2 => p,
        _ => return Vec::new(),
    };
    let k = path.len() - 1;

    // Branch indices a(x): index of the last path vertex on the tree path from s to x.
    let mut path_index: Vec<Option<u32>> = vec![None; n];
    for (i, &v) in path.iter().enumerate() {
        path_index[v] = Some(i as u32);
    }
    let mut branch: Vec<u32> = vec![0; n];
    for &v in tree.bfs_order() {
        if let Some(i) = path_index[v] {
            branch[v] = i;
        } else if let Some(p) = tree.parent(v) {
            branch[v] = branch[p];
        }
    }

    // Interval contributions: (start, end_inclusive, value).
    let mut starts: Vec<Vec<Distance>> = vec![Vec::new(); k];
    let mut ends: Vec<Vec<Distance>> = vec![Vec::new(); k];
    let push = |l: u32,
                r: u32,
                val: Distance,
                starts: &mut Vec<Vec<Distance>>,
                ends: &mut Vec<Vec<Distance>>| {
        if val == INFINITE_DISTANCE || l > r {
            return;
        }
        starts[l as usize].push(val);
        ends[r as usize].push(val);
    };

    for e in g.edges() {
        let (x, y) = e.endpoints();
        if !tree.is_reachable(x) || !tree.is_reachable(y) {
            continue;
        }
        // Skip the path edges themselves: e_i must not be its own crossing candidate, and any
        // other path edge only ever covers its own (different) position anyway.
        if let (Some(ix), Some(iy)) = (path_index[x], path_index[y]) {
            if ix.abs_diff(iy) == 1 {
                continue;
            }
        }
        let ax = branch[x];
        let ay = branch[y];
        if ax < ay {
            let val = dist_add(dist_add(tree.distance_or_infinite(x), 1), dist_to_t[y]);
            push(ax, ay - 1, val, &mut starts, &mut ends);
        } else if ay < ax {
            let val = dist_add(dist_add(tree.distance_or_infinite(y), 1), dist_to_t[x]);
            push(ay, ax - 1, val, &mut starts, &mut ends);
        }
    }

    // Sweep positions 0..k with a multiset of active candidate values.
    let mut active: BTreeMap<Distance, usize> = BTreeMap::new();
    let mut result = vec![INFINITE_DISTANCE; k];
    for i in 0..k {
        for &v in &starts[i] {
            *active.entry(v).or_insert(0) += 1;
        }
        if let Some((&best, _)) = active.iter().next() {
            result[i] = best;
        }
        for &v in &ends[i] {
            match active.get_mut(&v) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    active.remove(&v);
                }
                None => unreachable!("every interval end was previously started"),
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::single_source_brute_force;
    use msrp_graph::generators::{
        complete_bipartite, connected_gnm, cycle_graph, grid_graph, hypercube, path_graph,
    };
    use msrp_graph::{bfs_distances, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_against_brute_force(g: &Graph, s: Vertex) {
        let csr = g.freeze();
        let tree = ShortestPathTree::build(g, s);
        let truth = single_source_brute_force(g, &tree);
        for t in 0..g.vertex_count() {
            let dist_to_t = bfs_distances(g, t);
            let fast = single_pair_replacement_paths(&csr, &tree, t, &dist_to_t);
            assert_eq!(fast.len(), truth.row(t).len(), "row length for target {t}");
            for (i, &v) in fast.iter().enumerate() {
                assert_eq!(
                    Some(v),
                    truth.get(t, i),
                    "mismatch at target {t}, edge index {i} (source {s})"
                );
            }
        }
    }

    #[test]
    fn matches_brute_force_on_cycles_and_paths() {
        check_against_brute_force(&cycle_graph(9), 0);
        check_against_brute_force(&cycle_graph(10), 4);
        check_against_brute_force(&path_graph(8), 0);
        check_against_brute_force(&path_graph(8), 3);
    }

    #[test]
    fn matches_brute_force_on_grids() {
        check_against_brute_force(&grid_graph(4, 4), 0);
        check_against_brute_force(&grid_graph(3, 6), 7);
    }

    #[test]
    fn matches_brute_force_on_dense_graphs() {
        check_against_brute_force(&hypercube(4), 3);
        check_against_brute_force(&complete_bipartite(3, 5), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..6 {
            let n = 20 + trial * 5;
            let m = 2 * n;
            let g = connected_gnm(n, m, &mut rng).unwrap();
            check_against_brute_force(&g, trial % n);
        }
    }

    #[test]
    fn unreachable_target_yields_empty_vector() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let dist_to_2 = bfs_distances(&g, 2);
        assert!(single_pair_replacement_paths(&g.freeze(), &tree, 2, &dist_to_2).is_empty());
    }

    #[test]
    fn target_equal_to_source_yields_empty_vector() {
        let g = cycle_graph(5);
        let tree = ShortestPathTree::build(&g, 1);
        let dist = bfs_distances(&g, 1);
        assert!(single_pair_replacement_paths(&g.freeze(), &tree, 1, &dist).is_empty());
    }

    #[test]
    fn bridge_positions_are_infinite() {
        // Two triangles joined by a bridge 2-3.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
            .unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let dist_to_5 = bfs_distances(&g, 5);
        let r = single_pair_replacement_paths(&g.freeze(), &tree, 5, &dist_to_5);
        // Canonical path 0-1? depends on tree; use positions via path edges.
        let edges = tree.path_edges(5);
        let bridge_pos = edges.iter().position(|e| *e == msrp_graph::Edge::new(2, 3)).unwrap();
        assert_eq!(r[bridge_pos], INFINITE_DISTANCE);
        for (i, &v) in r.iter().enumerate() {
            if i != bridge_pos {
                assert_ne!(v, INFINITE_DISTANCE, "non-bridge edge {i} should have a replacement");
            }
        }
    }
}
