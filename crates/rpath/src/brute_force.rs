//! Exhaustive ground truth: remove the edge, rerun BFS.
//!
//! These routines are quadratic-or-worse and exist for two reasons: (1) every other algorithm in
//! the workspace is validated against them (unit tests, property tests, experiment E3), and
//! (2) they are the "recompute from scratch" baseline the benchmarks compare against.

use msrp_graph::{
    bfs_avoiding_edge, BfsScratch, CsrGraph, Distance, Edge, Graph, MultiBfsScratch,
    ShortestPathTree, Vertex, WAVE_LANES,
};

use crate::distances::SourceReplacementDistances;

/// The replacement distance `|st ⋄ e|` computed by a single BFS in `G \ {e}`.
///
/// `e` does not have to lie on the shortest `s–t` path (in that case the result simply equals
/// `d_{G\e}(s, t)`, which may or may not equal `d(s, t)`).
///
/// ```
/// use msrp_graph::{generators::cycle_graph, Edge};
/// use msrp_rpath::replacement_distance;
///
/// let g = cycle_graph(6);
/// assert_eq!(replacement_distance(&g, 0, 2, Edge::new(1, 2)), 4);
/// ```
pub fn replacement_distance(g: &Graph, s: Vertex, t: Vertex, e: Edge) -> Distance {
    bfs_avoiding_edge(g, s, e).dist[t]
}

/// Ground-truth single-source replacement paths: for every target `t` and every edge `e_i` on
/// the canonical `s–t` path, the exact value of `|st ⋄ e_i|`.
///
/// Runs one BFS per tree edge of `tree` (so `O(n·(m + n))` time), then distributes the result to
/// every target whose canonical path uses that edge. Convenience wrapper that freezes `g` once
/// and runs [`single_source_brute_force_csr`] over the CSR view.
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force(g: &Graph, tree: &ShortestPathTree) -> SourceReplacementDistances {
    single_source_brute_force_csr(&g.freeze(), tree)
}

/// CSR entry point of [`single_source_brute_force`] (allocates one private scratch).
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force_csr(
    g: &CsrGraph,
    tree: &ShortestPathTree,
) -> SourceReplacementDistances {
    let mut scratch = BfsScratch::new();
    single_source_brute_force_with_scratch(g, tree, &mut scratch)
}

/// The brute-force inner loop: one edge-avoiding BFS per tree edge, all through the caller's
/// [`BfsScratch`] so the `O(n)` searches share one set of buffers (this is what
/// `msrp-oracle::build_exact` runs per source).
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force_with_scratch(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    scratch: &mut BfsScratch,
) -> SourceReplacementDistances {
    let n = g.vertex_count();
    let s = tree.source();
    assert!(s < n, "tree root out of range for the graph");
    let mut out = SourceReplacementDistances::new(tree);
    // Every edge on some canonical path is a tree edge (p, c); its position on the path to any
    // affected target is depth(c) - 1, and the affected targets are exactly the descendants of c.
    for c in 0..n {
        let p = match tree.parent(c) {
            Some(p) => p,
            None => continue,
        };
        let e = Edge::new(p, c);
        let pos = tree.distance_or_infinite(c) as usize - 1;
        scratch.run_avoiding(g, s, e);
        for (t, &d) in scratch.dist().iter().enumerate() {
            if tree.is_reachable(t) && tree.is_ancestor(c, t) {
                out.set(t, pos, d);
            }
        }
    }
    out
}

/// Bit-parallel variant of [`single_source_brute_force_with_scratch`]: the tree edges are
/// batched into waves of up to [`WAVE_LANES`] and each wave runs all of its edge-avoiding
/// searches simultaneously through one [`MultiBfsScratch`].
///
/// The brute-force tables consume only distances, and the avoiding wave's distance planes are
/// bit-identical to the sequential kernel's `dist` array (pinned by the kernel differential
/// suite), so this produces *exactly* the same [`SourceReplacementDistances`] — it is the
/// memory-bandwidth-friendly route `msrp-oracle::build_exact` takes per source.
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn single_source_brute_force_wave(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    wave: &mut MultiBfsScratch,
) -> SourceReplacementDistances {
    let n = g.vertex_count();
    let s = tree.source();
    assert!(s < n, "tree root out of range for the graph");
    let mut out = SourceReplacementDistances::new(tree);
    // Same edge enumeration as the sequential loop: child vertices in ascending order.
    let children: Vec<Vertex> = (0..n).filter(|&c| tree.parent(c).is_some()).collect();
    let mut edges = Vec::with_capacity(WAVE_LANES);
    for batch in children.chunks(WAVE_LANES) {
        edges.clear();
        edges.extend(batch.iter().map(|&c| Edge::new(tree.parent(c).unwrap(), c)));
        wave.run_avoiding_wave(g, s, &edges);
        for (lane, &c) in batch.iter().enumerate() {
            let pos = tree.distance_or_infinite(c) as usize - 1;
            for t in 0..n {
                if tree.is_reachable(t) && tree.is_ancestor(c, t) {
                    out.set(t, pos, wave.lane_dist(lane, t));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, path_graph};
    use msrp_graph::INFINITE_DISTANCE;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_replacements_go_the_long_way() {
        let g = cycle_graph(8);
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_brute_force(&g, &tree);
        // Path 0-1-2-3: avoiding any edge on it forces the complementary arc of length 8 - d.
        assert_eq!(out.get(3, 0), Some(5));
        assert_eq!(out.get(3, 1), Some(5));
        assert_eq!(out.get(3, 2), Some(5));
        assert_eq!(out.get(1, 0), Some(7));
    }

    #[test]
    fn bridges_have_no_replacement() {
        let g = path_graph(5);
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_brute_force(&g, &tree);
        for t in 1..5 {
            for i in 0..out.row(t).len() {
                assert_eq!(out.get(t, i), Some(INFINITE_DISTANCE));
            }
        }
    }

    #[test]
    fn grid_replacements_detour_by_two() {
        let g = grid_graph(3, 3);
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_brute_force(&g, &tree);
        // Distances in a grid detour around a single missing edge with +2 at most
        // (and exactly +2 for the first edge of a straight-line path).
        let d03 = tree.distance(3).unwrap();
        let r = out.get(3, 0).unwrap();
        assert_eq!(r, d03 + 2);
    }

    #[test]
    fn matches_per_query_brute_force() {
        let g = grid_graph(3, 4);
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_brute_force(&g, &tree);
        for t in 0..g.vertex_count() {
            let edges = tree.path_edges(t);
            for (i, e) in edges.iter().enumerate() {
                assert_eq!(out.get(t, i), Some(replacement_distance(&g, 0, t, *e)));
            }
        }
    }

    #[test]
    fn replacement_distance_for_off_path_edges() {
        let g = cycle_graph(6);
        // Removing (3, 4) does not affect the path from 0 to 2.
        assert_eq!(replacement_distance(&g, 0, 2, Edge::new(3, 4)), 2);
    }

    #[test]
    fn disconnected_graph_rows_are_empty() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let tree = ShortestPathTree::build(&g, 0);
        let out = single_source_brute_force(&g, &tree);
        assert!(out.row(3).is_empty());
        assert!(out.row(4).is_empty());
        assert_eq!(out.get(2, 0), Some(INFINITE_DISTANCE));
    }

    #[test]
    fn wave_route_is_bit_identical_to_the_sequential_route() {
        // n = 130 reachable children > 2 * WAVE_LANES, so chunking runs at least three waves
        // and the last one is partial.
        let mut rng = StdRng::seed_from_u64(9);
        let g = connected_gnm(130, 4 * 130, &mut rng).unwrap();
        let csr = g.freeze();
        let mut scratch = BfsScratch::new();
        let mut wave = MultiBfsScratch::new();
        for s in [0usize, 64, 129] {
            let tree = ShortestPathTree::build_with_scratch(&csr, s, &mut scratch);
            let sequential = single_source_brute_force_with_scratch(&csr, &tree, &mut scratch);
            let waved = single_source_brute_force_wave(&csr, &tree, &mut wave);
            assert_eq!(waved, sequential, "source {s}");
        }
    }

    #[test]
    fn wave_route_handles_bridges_and_disconnection() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        let csr = g.freeze();
        let tree = ShortestPathTree::build(&g, 0);
        let mut wave = MultiBfsScratch::new();
        let waved = single_source_brute_force_wave(&csr, &tree, &mut wave);
        assert_eq!(waved, single_source_brute_force(&g, &tree));
        assert_eq!(waved.get(3, 1), Some(INFINITE_DISTANCE));
        assert!(waved.row(5).is_empty());
    }
}
