//! Differential battery for the Bernstein–Karger preprocessing: on every seeded workload
//! family, the BK construction, the per-tree-edge brute force behind
//! [`ReplacementPathOracle::build_exact`], and the independent
//! [`single_source_brute_force_csr`] rows must agree **bit for bit** — same rows, same query
//! answers, for every source-set size σ ∈ {1, ⌈√n⌉, n/4}.
//!
//! Everything is seed-pinned (`DESIGN.md`, "Determinism policy"): a failure reproduces
//! exactly, and the asserted equalities are table equality (`==` on
//! [`SourceReplacementDistances`]), not sampled spot checks. A second layer re-checks the
//! query surface itself (on-path, off-path, non-tree and disconnecting edges) so a future
//! change to the query algebra cannot pass on table equality alone.

use msrp_graph::generators::{
    barabasi_albert, connected_gnm, cycle_graph, gnm, grid_graph, star_graph,
};
use msrp_graph::{CsrGraph, Graph, ShortestPathTree, TreePathCover, Vertex};
use msrp_oracle::{bk_replacement_distances, BkScratch, ReplacementPathOracle};
use msrp_rpath::single_source_brute_force_csr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// σ ∈ {1, ⌈√n⌉, n/4}, deduplicated and clamped to [1, n].
fn sigma_ladder(n: usize) -> Vec<usize> {
    let mut sigmas = vec![1, (n as f64).sqrt().ceil() as usize, n / 4];
    for s in &mut sigmas {
        *s = (*s).clamp(1, n);
    }
    sigmas.dedup();
    sigmas
}

/// σ distinct sources drawn from a seeded shuffle of the vertex set (so source sets are
/// scattered, not the evenly-spaced ones the benches use).
fn seeded_sources(n: usize, sigma: usize, seed: u64) -> Vec<Vertex> {
    let mut ids: Vec<Vertex> = (0..n).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    ids.truncate(sigma);
    ids
}

/// The battery: for every σ in the ladder, BK rows == exact rows == independent brute-force
/// rows, and the three query surfaces agree on a seeded mix of on-path, off-path, non-tree
/// and out-of-tree queries.
fn differential_battery(name: &str, g: &Graph, seed: u64) {
    let n = g.vertex_count();
    let csr: CsrGraph = g.freeze();
    let edges = g.edge_vec();
    for (i, &sigma) in sigma_ladder(n).iter().enumerate() {
        let sources = seeded_sources(n, sigma, seed ^ (i as u64).wrapping_mul(0x9E37));
        let bk = ReplacementPathOracle::build_bk_csr(&csr, &sources);
        let exact = ReplacementPathOracle::build_exact_csr(&csr, &sources);
        // Layer 1: the whole answer state, row for row, bit for bit.
        assert_eq!(bk.per_source(), exact.per_source(), "{name}: sigma={sigma}");
        assert_eq!(bk.entry_count(), exact.entry_count(), "{name}: sigma={sigma}");
        // Layer 2: an independent derivation of the same rows (fresh trees, fresh scratch),
        // so the equality above cannot be satisfied by a shared bug.
        let mut scratch = BkScratch::new();
        for (idx, &s) in sources.iter().enumerate() {
            let tree = ShortestPathTree::build_csr(&csr, s);
            let cover = TreePathCover::build(&tree);
            let brute = single_source_brute_force_csr(&csr, &tree);
            assert_eq!(
                bk_replacement_distances(&csr, &tree, &cover, &mut scratch),
                brute,
                "{name}: sigma={sigma} s={s}"
            );
            assert_eq!(&bk.per_source()[idx], &brute, "{name}: sigma={sigma} s={s}");
        }
        // Layer 3: the query surface. Every edge (tree or not, on the canonical path or
        // not) against a seeded slice of targets — answers must match between the two
        // oracles, including `Some(∞)` disconnections and `None` for non-sources.
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(sigma as u64));
        let step = (n / 12).max(1);
        for &s in &sources {
            for t in (0..n).step_by(step) {
                for _ in 0..8.min(edges.len()) {
                    let e = edges[rng.gen_range(0..edges.len())];
                    assert_eq!(
                        bk.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "{name}: sigma={sigma} s={s} t={t} e={e}"
                    );
                }
            }
        }
        let non_source = (0..n).find(|v| !sources.contains(v));
        if let Some(v) = non_source {
            assert_eq!(bk.replacement_distance(v, 0, edges[0]), None, "{name}");
        }
    }
}

use rand::Rng;

#[test]
fn differential_gnm() {
    let mut rng = StdRng::seed_from_u64(101);
    let g = connected_gnm(48, 120, &mut rng).unwrap();
    differential_battery("gnm", &g, 1);
}

#[test]
fn differential_barabasi_albert() {
    let mut rng = StdRng::seed_from_u64(202);
    let g = barabasi_albert(44, 3, &mut rng).unwrap();
    differential_battery("barabasi-albert", &g, 2);
}

#[test]
fn differential_grid() {
    differential_battery("grid", &grid_graph(6, 7), 3);
}

#[test]
fn differential_cycle() {
    differential_battery("cycle", &cycle_graph(30), 4);
}

#[test]
fn differential_star() {
    differential_battery("star", &star_graph(33), 5);
}

#[test]
fn differential_disconnected() {
    // A sparse gnm draw (several components, isolated vertices) plus a deliberately
    // engineered two-component graph with bridges.
    let mut rng = StdRng::seed_from_u64(303);
    let g = gnm(40, 28, &mut rng).unwrap();
    differential_battery("gnm-disconnected", &g, 6);
    let h = Graph::from_edges(
        14,
        &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (7, 8), (8, 9), (9, 7), (9, 10)],
    )
    .unwrap();
    differential_battery("two-components", &h, 7);
}

#[test]
fn bk_sharded_parallel_builds_stay_bit_identical() {
    // The sharded BK build (what `msrp-serve` consumes) merged back together must equal the
    // sequential build row for row, at every thread count.
    let mut rng = StdRng::seed_from_u64(404);
    let g = connected_gnm(40, 100, &mut rng).unwrap();
    let csr = g.freeze();
    let sources = seeded_sources(40, 10, 11);
    let whole = ReplacementPathOracle::build_bk_csr(&csr, &sources);
    for threads in [1usize, 2, 3, 10] {
        let merged = ReplacementPathOracle::from_shards(msrp_oracle::build_bk_shards_csr(
            &csr, &sources, threads,
        ));
        assert_eq!(merged.per_source(), whole.per_source(), "threads={threads}");
        assert_eq!(merged.sources(), whole.sources());
    }
}

#[test]
fn bk_flattened_oracle_agrees_with_exact_flattened_oracle() {
    // The cuckoo-flattened view built from BK tables must behave exactly like the one built
    // from the brute-force tables (same keys, same values, same misses).
    let g = grid_graph(5, 5);
    let sources = [0usize, 12, 24];
    let bk = ReplacementPathOracle::build_bk(&g, &sources).flatten();
    let exact = ReplacementPathOracle::build_exact(&g, &sources).flatten();
    assert_eq!(bk.len(), exact.len());
    for &s in &sources {
        for t in 0..25 {
            for e in g.edges() {
                assert_eq!(bk.query(s, t, e), exact.query(s, t, e), "s={s} t={t} e={e}");
            }
        }
    }
}
