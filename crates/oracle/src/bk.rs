//! The Bernstein–Karger single-fault preprocessing: path-cover decomposition plus per-path
//! replacement tables, replacing the one-BFS-per-tree-edge brute force of
//! [`build_exact`](ReplacementPathOracle::build_exact).
//!
//! # The pipeline
//!
//! For each source `s` with BFS tree `T_s`:
//!
//! 1. **Decompose** `T_s` into its heavy-path cover ([`TreePathCover`]): vertex-disjoint
//!    descending chains, every tree edge owned by exactly one cover path, every subtree a
//!    contiguous slice of the heavy-first preorder.
//! 2. **Walk each cover path top to bottom.** The edge above chain vertex `c` — the tree edge
//!    `e = (p, c)` with `p = parent(c)` — separates the subtree `C = desc(c)` from the rest of
//!    the tree, and the targets whose canonical path uses `e` are exactly the members of `C`.
//! 3. **Solve one cut, not one graph.** For `t ∈ C`, every `s–t` path in `G \ e` decomposes at
//!    its *last* entry into `C`: a prefix from `s` to some `x ∉ C` (whose canonical distance
//!    survives, because canonical paths of non-descendants never use `e`), one crossing edge
//!    `{x, y} ≠ e`, and a suffix inside `G[C]`. Therefore
//!
//!    ```text
//!    d_{G\e}(s, t) = min_{y ∈ C} [ seed(y) + d_{G[C]}(y, t) ],
//!    seed(y) = min { d(s, x) + 1 : {x, y} ∈ E, x ∉ C, {x, y} ≠ e }
//!    ```
//!
//!    which one multi-seed BFS over the subtree slice computes exactly — a bucket (Dial)
//!    queue absorbs the unequal seed values, whose spread is at most `|C|`.
//!
//! The per-path tables this fills are the rows of [`SourceReplacementDistances`], indexed by
//! the canonical-path position of the avoided edge, so `QUERY(s, t, e)` stays the same `O(1)`
//! lookup the rest of the workspace already serves. The answers are **bit-for-bit identical**
//! to `build_exact`'s: both store the exact distance `d_{G\e}(s, t)`, a unique number — the
//! differential suite (`tests/bk_differential.rs`) pins this on every seeded workload family.
//!
//! # Cost
//!
//! Processing the edge above `c` touches `O(|C| + m(C))` words, where `m(C)` counts edges
//! with an endpoint in `C`. Summed over all tree edges this is
//! `O(Σ_t depth(t) + Σ_{{u,v} ∈ E} (depth(u) + depth(v)))` — output-sensitive, and
//! `O((n + m) · log n)`-ish on the shallow trees of the random workloads — versus the brute
//! force's `Θ(n · m)` per source (one full BFS per tree edge). `BENCH_bk.json` records the
//! measured gap.

use msrp_graph::{
    bfs_trees_wave, CsrGraph, Distance, Graph, MultiBfsScratch, ShortestPathTree, TreePathCover,
    Vertex, INFINITE_DISTANCE,
};
use msrp_obs::{timed, NoProfiler, Profiler, StageProfile};
use msrp_rpath::SourceReplacementDistances;

use crate::ReplacementPathOracle;

/// Stage labels of the profiled BK pipeline (see
/// [`build_bk_csr_profiled`](ReplacementPathOracle::build_bk_csr_profiled)): BFS tree
/// construction, heavy-path cover decomposition, replacement-table allocation, the
/// per-cut multi-seed BFS solves, and the shard merge.
pub const BK_STAGES: [&str; 5] = ["tree", "cover", "rows", "cuts", "merge"];

/// Reusable buffers for the Bernstein–Karger per-cut searches: one distance array reset in
/// `O(touched)`, the bucket (Dial) queue absorbing unequal seed values, and the seed buffer.
///
/// One scratch serves every cut of every cover path of every source, so the whole
/// [`build_bk`](ReplacementPathOracle::build_bk) construction performs no per-cut allocation
/// (mirroring what [`MultiBfsScratch`] does for `build_exact`).
#[derive(Clone, Debug, Default)]
pub struct BkScratch {
    /// Tentative distances of the current cut (`INFINITE_DISTANCE` when untouched).
    dist: Vec<Distance>,
    /// Vertices whose `dist` entry the current cut wrote (the reset list).
    touched: Vec<Vertex>,
    /// `buckets[d - base]` holds vertices with tentative distance `d` (lazy deletion).
    buckets: Vec<Vec<Vertex>>,
    /// Seed values aligned with the subtree slice of the current cut.
    seeds: Vec<Distance>,
}

impl BkScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the multi-seed bucket BFS for the cut below tree edge `(p, c)`, leaving
    /// `self.dist[t] = d_{G\(p,c)}(s, t)` for every `t` in the subtree of `c`.
    /// Returns `false` (leaving every distance infinite) when no crossing edge exists —
    /// the failed edge is a bridge and the whole subtree is disconnected.
    fn run_cut(
        &mut self,
        g: &CsrGraph,
        tree: &ShortestPathTree,
        cover: &TreePathCover,
        p: Vertex,
        c: Vertex,
    ) -> bool {
        let n = g.vertex_count();
        if self.dist.len() != n {
            self.dist.clear();
            self.dist.resize(n, INFINITE_DISTANCE);
        }
        let sub = cover.descendants(c);
        // Pass 1: seed every subtree vertex from its crossing edges. A neighbour x
        // contributes when it lies outside the subtree (its canonical distance survives the
        // failure) via an edge other than the failed one; `{p, c}` is the only *tree* edge
        // crossing the cut, so the exclusion is exactly that single pair.
        self.seeds.clear();
        let mut base = INFINITE_DISTANCE;
        for &y in sub {
            let mut s = INFINITE_DISTANCE;
            for &x in g.neighbor_row(y) {
                let x = x as Vertex;
                if cover.in_subtree(c, x) || (y == c && x == p) {
                    continue;
                }
                let dx = tree.distance_or_infinite(x);
                if dx != INFINITE_DISTANCE && dx + 1 < s {
                    s = dx + 1;
                }
            }
            self.seeds.push(s);
            if s < base {
                base = s;
            }
        }
        if base == INFINITE_DISTANCE {
            return false; // bridge: every replacement entry of this cut stays infinite
        }
        // Pass 2: Dial's algorithm over the subtree. Seed spread is at most |C| (seeds of
        // adjacent subtree vertices differ by at most 1 plus the internal hop), so the
        // bucket index never strays far from `d - base`.
        let mut last = 0usize;
        for (i, &y) in sub.iter().enumerate() {
            let s = self.seeds[i];
            if s == INFINITE_DISTANCE {
                continue;
            }
            self.dist[y] = s;
            self.touched.push(y);
            let idx = (s - base) as usize;
            if idx >= self.buckets.len() {
                self.buckets.resize_with(idx + 1, Vec::new);
            }
            self.buckets[idx].push(y);
            last = last.max(idx);
        }
        let mut cur = 0usize;
        while cur <= last {
            while let Some(v) = self.buckets[cur].pop() {
                let dv = base + cur as Distance;
                if self.dist[v] != dv {
                    continue; // stale queue entry: v was re-seeded or relaxed lower
                }
                for &x in g.neighbor_row(v) {
                    let x = x as Vertex;
                    if !cover.in_subtree(c, x) || dv + 1 >= self.dist[x] {
                        continue;
                    }
                    if self.dist[x] == INFINITE_DISTANCE {
                        self.touched.push(x);
                    }
                    self.dist[x] = dv + 1;
                    let idx = cur + 1;
                    if idx >= self.buckets.len() {
                        self.buckets.resize_with(idx + 1, Vec::new);
                    }
                    self.buckets[idx].push(x);
                    last = last.max(idx);
                }
            }
            cur += 1;
        }
        true
    }

    /// Clears the entries the last cut wrote (`O(touched)`).
    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v] = INFINITE_DISTANCE;
        }
        self.touched.clear();
    }
}

/// Solves the single cut below tree edge `(p, c)` and writes its column of `out`: entry
/// `(t, dist(c) - 1)` for every `t` in the subtree of `c`, `INFINITE_DISTANCE` when the cut
/// is a bridge. Writes are unconditional, so the helper serves both fresh construction
/// (entries start infinite) and the incremental patcher (entries may hold a stale finite
/// value from the previous epoch).
pub(crate) fn solve_cut_into(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    cover: &TreePathCover,
    scratch: &mut BkScratch,
    out: &mut SourceReplacementDistances,
    p: Vertex,
    c: Vertex,
) {
    let pos = tree.distance_or_infinite(c) as usize - 1;
    if scratch.run_cut(g, tree, cover, p, c) {
        for &t in cover.descendants(c) {
            out.set(t, pos, scratch.dist[t]);
        }
        scratch.reset();
    } else {
        // Bridge: the failure disconnects the whole subtree.
        for &t in cover.descendants(c) {
            out.set(t, pos, INFINITE_DISTANCE);
        }
    }
}

/// The Bernstein–Karger replacement table for one source: walks every cover path of `cover`
/// top to bottom and solves each tree-edge cut with one multi-seed subtree BFS, filling the
/// same row layout the brute force fills — exactly (see the module docs for the identity).
///
/// `tree` and `cover` must belong together (`cover == TreePathCover::build(tree)`), and the
/// tree must be rooted at a vertex of `g`. Exposed (rather than private to
/// [`build_bk`](ReplacementPathOracle::build_bk)) so the differential suite and experiment
/// E10 can compare rows against `single_source_brute_force_csr` with `==`.
///
/// # Panics
///
/// Panics if `tree` is not rooted at a vertex of `g`.
pub fn bk_replacement_distances(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    cover: &TreePathCover,
    scratch: &mut BkScratch,
) -> SourceReplacementDistances {
    bk_replacement_distances_impl(g, tree, cover, scratch, &mut NoProfiler)
}

/// The generic body of [`bk_replacement_distances`]: identical output, with per-stage wall
/// time charged to `profiler`. Instantiated with [`NoProfiler`] the timing calls compile
/// away, so the public un-profiled entry point pays nothing.
fn bk_replacement_distances_impl<P: Profiler>(
    g: &CsrGraph,
    tree: &ShortestPathTree,
    cover: &TreePathCover,
    scratch: &mut BkScratch,
    profiler: &mut P,
) -> SourceReplacementDistances {
    let n = g.vertex_count();
    assert!(tree.source() < n, "tree root out of range for the graph");
    let mut out = timed(profiler, "rows", || SourceReplacementDistances::new(tree));
    for path_id in 0..cover.path_count() {
        for &c in cover.path(path_id) {
            let p = match tree.parent(c) {
                Some(p) => p,
                None => continue, // c is the root: no edge above it
            };
            timed(profiler, "cuts", || solve_cut_into(g, tree, cover, scratch, &mut out, p, c));
        }
    }
    out
}

impl ReplacementPathOracle {
    /// Builds the oracle with the real Bernstein–Karger preprocessing: heavy-path cover
    /// decomposition of every source tree plus one multi-seed subtree BFS per tree-edge cut,
    /// instead of [`build_exact`](Self::build_exact)'s full BFS per tree edge. Answers are
    /// bit-for-bit identical to `build_exact`'s (pinned by `tests/bk_differential.rs`);
    /// only the construction cost differs. Freezes `g` once.
    ///
    /// ```
    /// use msrp_graph::{generators::cycle_graph, Edge};
    /// use msrp_oracle::ReplacementPathOracle;
    ///
    /// let g = cycle_graph(8);
    /// let oracle = ReplacementPathOracle::build_bk(&g, &[0, 4]);
    /// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(1, 2)), Some(5));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`build_exact`](Self::build_exact) (an out-of-range
    /// source).
    pub fn build_bk(g: &Graph, sources: &[Vertex]) -> Self {
        Self::build_bk_csr(&g.freeze(), sources)
    }

    /// CSR entry point of [`build_bk`](Self::build_bk): the source trees are built in
    /// 64-way bit-parallel waves through one shared [`MultiBfsScratch`] and every cut runs
    /// through one shared [`BkScratch`], so the whole construction performs no per-cut
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range for `g`.
    pub fn build_bk_csr(g: &CsrGraph, sources: &[Vertex]) -> Self {
        Self::build_bk_csr_impl(g, sources, &mut NoProfiler)
    }

    /// Profiled variant of [`build_bk_csr`](Self::build_bk_csr): bit-identical output,
    /// with per-stage wall time (`"tree"` BFS trees, `"cover"` heavy-path decomposition,
    /// `"rows"` table allocation, `"cuts"` the multi-seed cut BFS solves) accumulated
    /// into `profile`. Experiment E12 builds its build-phase tables from this.
    ///
    /// # Panics
    ///
    /// Same as [`build_bk_csr`](Self::build_bk_csr).
    pub fn build_bk_csr_profiled(
        g: &CsrGraph,
        sources: &[Vertex],
        profile: &mut StageProfile,
    ) -> Self {
        Self::build_bk_csr_impl(g, sources, profile)
    }

    fn build_bk_csr_impl<P: Profiler>(g: &CsrGraph, sources: &[Vertex], profiler: &mut P) -> Self {
        let mut wave = MultiBfsScratch::new();
        let mut scratch = BkScratch::new();
        // All source trees come from 64-way bit-parallel waves (bit-identical to the
        // per-source `BfsScratch` route); the "tree" stage is charged once per wave batch.
        let trees = timed(profiler, "tree", || bfs_trees_wave(g, sources, &mut wave));
        let distances = trees
            .iter()
            .map(|t| {
                let cover = timed(profiler, "cover", || TreePathCover::build(t));
                bk_replacement_distances_impl(g, t, &cover, &mut scratch, profiler)
            })
            .collect();
        Self::from_parts(sources.to_vec(), trees, distances)
    }
}

/// Builds one Bernstein–Karger oracle per shard, in parallel (one scoped worker per shard
/// over the caller's graph, frozen once) — the BK mirror of [`build_shards`](crate::build_shards),
/// consumed by `msrp-serve`'s `ShardedOracle::build_bk_csr`.
///
/// `threads == 0` is treated as 1 (built inline); thread counts above σ are clamped to σ.
///
/// # Panics
///
/// Panics on the inputs [`ReplacementPathOracle::build_bk`] rejects, and if a worker thread
/// panics.
pub fn build_bk_shards(
    g: &Graph,
    sources: &[Vertex],
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    build_bk_shards_csr(&g.freeze(), sources, threads)
}

/// CSR entry point of [`build_bk_shards`]: every scoped worker traverses the same frozen
/// view through a shared reference.
///
/// # Panics
///
/// Same as [`build_bk_shards`].
pub fn build_bk_shards_csr(
    g: &CsrGraph,
    sources: &[Vertex],
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        return vec![ReplacementPathOracle::build_bk_csr(g, sources)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = crate::shard_sources(sources, threads)
            .into_iter()
            .map(|chunk| scope.spawn(move || ReplacementPathOracle::build_bk_csr(g, chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("oracle shard worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, path_graph, star_graph};
    use msrp_graph::Edge;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rows_match_brute_force(g: &Graph, s: Vertex) {
        let csr = g.freeze();
        let tree = ShortestPathTree::build_csr(&csr, s);
        let cover = TreePathCover::build(&tree);
        let mut scratch = BkScratch::new();
        let bk = bk_replacement_distances(&csr, &tree, &cover, &mut scratch);
        let brute = msrp_rpath::single_source_brute_force_csr(&csr, &tree);
        assert_eq!(bk, brute, "source {s}");
    }

    #[test]
    fn bk_rows_equal_brute_force_on_small_families() {
        for g in [cycle_graph(9), path_graph(7), star_graph(6), grid_graph(4, 5)] {
            for s in 0..g.vertex_count().min(4) {
                rows_match_brute_force(&g, s);
            }
        }
    }

    #[test]
    fn bk_rows_equal_brute_force_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = connected_gnm(40, 95, &mut rng).unwrap();
        for s in [0, 13, 39] {
            rows_match_brute_force(&g, s);
        }
    }

    #[test]
    fn bk_rows_equal_brute_force_on_disconnected_graphs() {
        // Two components plus isolated vertices; cuts inside one component must never leak
        // distances into the other.
        let g = Graph::from_edges(
            12,
            &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (6, 7), (7, 8), (8, 6)],
        )
        .unwrap();
        for s in [0, 4, 6, 9] {
            rows_match_brute_force(&g, s);
        }
    }

    #[test]
    fn bk_oracle_matches_exact_oracle_queries() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = connected_gnm(26, 60, &mut rng).unwrap();
        let sources = [0usize, 9, 20];
        let bk = ReplacementPathOracle::build_bk(&g, &sources);
        let exact = ReplacementPathOracle::build_exact(&g, &sources);
        assert_eq!(bk.per_source(), exact.per_source());
        for &s in &sources {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(
                        bk.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "s={s} t={t} e={e}"
                    );
                }
            }
        }
    }

    #[test]
    fn bk_reports_bridges_as_infinite() {
        let g = path_graph(6);
        let oracle = ReplacementPathOracle::build_bk(&g, &[0]);
        for t in 1..6 {
            for i in 0..t {
                let e = Edge::new(i, i + 1);
                assert_eq!(oracle.replacement_distance(0, t, e), Some(INFINITE_DISTANCE));
            }
        }
    }

    #[test]
    fn bk_shards_agree_with_the_unsharded_build() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = connected_gnm(30, 72, &mut rng).unwrap();
        let sources = [0usize, 6, 12, 18, 24];
        let whole = ReplacementPathOracle::build_bk(&g, &sources);
        for threads in [0usize, 1, 2, 5, 16] {
            let shards = build_bk_shards(&g, &sources, threads);
            let merged = ReplacementPathOracle::from_shards(shards);
            assert_eq!(merged.sources(), &sources);
            assert_eq!(merged.per_source(), whole.per_source(), "threads={threads}");
        }
    }

    #[test]
    fn profiled_build_is_bit_identical_and_covers_the_pipeline() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = connected_gnm(36, 80, &mut rng).unwrap();
        let csr = g.freeze();
        let sources = [0usize, 11, 22, 33];
        let plain = ReplacementPathOracle::build_bk_csr(&csr, &sources);
        let mut profile = StageProfile::new();
        let profiled = ReplacementPathOracle::build_bk_csr_profiled(&csr, &sources, &mut profile);
        assert_eq!(plain.per_source(), profiled.per_source());
        // Trees are batched into 64-way waves (one timed call covers all four sources
        // here); the remaining per-source stages fire once per source, cuts once per edge.
        assert_eq!(profile.get("tree").unwrap().count, 1);
        assert_eq!(profile.get("cover").unwrap().count, sources.len() as u64);
        assert_eq!(profile.get("rows").unwrap().count, sources.len() as u64);
        assert!(profile.get("cuts").unwrap().count > 0);
        assert!(profile.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn shared_scratch_is_clean_across_cuts_and_sources() {
        // Re-running a second source through the same scratch must not see stale state
        // from the first (the O(touched) reset is the only cleanup).
        let g = grid_graph(5, 5);
        let csr = g.freeze();
        let mut scratch = BkScratch::new();
        let mut rows = Vec::new();
        for s in [0usize, 12, 24] {
            let tree = ShortestPathTree::build_csr(&csr, s);
            let cover = TreePathCover::build(&tree);
            rows.push(bk_replacement_distances(&csr, &tree, &cover, &mut scratch));
        }
        for (i, &s) in [0usize, 12, 24].iter().enumerate() {
            let tree = ShortestPathTree::build_csr(&csr, s);
            assert_eq!(rows[i], msrp_rpath::single_source_brute_force_csr(&csr, &tree));
        }
    }
}
