//! Single-fault replacement-path distance oracles.
//!
//! Bernstein and Karger (STOC 2009) build, for *all* sources, a distance oracle of size `Õ(n²)`
//! answering `QUERY(x, y, e)` — the length of the shortest `x–y` path avoiding the edge `e` — in
//! `O(1)` time; the MSRP paper generalizes the preprocessing to an arbitrary number of sources
//! `σ`. This crate serves that query interface from three construction routes:
//!
//! * [`ReplacementPathOracle`] — per-source rows indexed by the canonical-path position of the
//!   avoided edge (compact, cache friendly);
//! * [`build_bk`](ReplacementPathOracle::build_bk) — the **real Bernstein–Karger
//!   preprocessing** (heavy-path cover decomposition plus one multi-seed subtree search per
//!   tree-edge cut, see the [`bk`] module);
//! * [`build`](ReplacementPathOracle::build) — the paper's MSRP solver packaged behind the
//!   same interface;
//! * [`build_exact`](ReplacementPathOracle::build_exact) — the brute-force construction used
//!   as the ground-truth comparator (all three routes produce bit-for-bit identical tables;
//!   `tests/bk_differential.rs` pins it);
//! * [`FlatReplacementOracle`] — any oracle flattened into a cuckoo hash table keyed by
//!   `(source, target, edge)`, demonstrating the worst-case `O(1)` lookup structure the paper
//!   cites (Pagh–Rodler, Lemma 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bk;
pub mod incremental;

pub use bk::{
    bk_replacement_distances, build_bk_shards, build_bk_shards_csr, BkScratch, BK_STAGES,
};
pub use incremental::RebuildStats;

use msrp_core::{solve_msrp_csr, solve_msrp_weighted, MsrpOutput, MsrpParams, WeightedMsrpOutput};
use msrp_graph::{
    bfs_trees_wave, CsrGraph, CuckooHashMap, DijkstraScratch, Distance, Edge, Graph,
    MultiBfsScratch, ShortestPathTree, Vertex, Weight, WeightedCsrGraph, WeightedTree,
    INFINITE_DISTANCE, INFINITE_WEIGHT,
};
use msrp_rpath::{
    single_source_brute_force_wave, single_source_brute_force_weighted, SourceReplacementDistances,
    WeightedReplacementDistances,
};

/// A single-edge-fault distance oracle for a fixed set of sources.
///
/// ```
/// use msrp_graph::{generators::cycle_graph, Edge};
/// use msrp_oracle::ReplacementPathOracle;
/// use msrp_core::MsrpParams;
///
/// let g = cycle_graph(8);
/// let oracle = ReplacementPathOracle::build(&g, &[0, 4], &MsrpParams::default());
/// assert_eq!(oracle.distance(0, 3), Some(3));
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(1, 2)), Some(5));
/// // Edges off the canonical path do not hurt.
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(5, 6)), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct ReplacementPathOracle {
    sources: Vec<Vertex>,
    trees: Vec<ShortestPathTree>,
    distances: Vec<SourceReplacementDistances>,
}

impl ReplacementPathOracle {
    /// Builds the oracle by running the paper's MSRP algorithm (freezes `g` once and runs
    /// every traversal over the CSR view).
    pub fn build(g: &Graph, sources: &[Vertex], params: &MsrpParams) -> Self {
        Self::build_csr(&g.freeze(), sources, params)
    }

    /// CSR entry point of [`build`](Self::build) for callers that already hold a frozen view.
    pub fn build_csr(g: &CsrGraph, sources: &[Vertex], params: &MsrpParams) -> Self {
        let out = solve_msrp_csr(g, sources, params);
        Self::from_msrp_output(out)
    }

    /// Builds the oracle in parallel by sharding the σ sources across `threads` workers.
    ///
    /// The per-source solves of `msrp_core` are independent, so each worker runs the full MSRP
    /// solver on a contiguous shard of the sources (see [`shard_sources`]) and the per-source
    /// rows are merged back in input order with [`from_shards`](Self::from_shards). The sharding is a pure
    /// function of `(sources, threads)`, so a given `(graph, sources, params, threads)` tuple
    /// always reproduces the same oracle; and because every construction route computes the
    /// same replacement *distances*, answers agree across thread counts whenever the solver is
    /// exact (always, under `MsrpParams::default()` on the seeds the test-suite pins — see
    /// `DESIGN.md`, "Determinism policy").
    ///
    /// `threads == 0` is treated as 1; thread counts above σ are clamped to σ.
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`build`](Self::build) (empty, duplicate, or out-of-range
    /// sources), and if a worker thread panics.
    pub fn build_parallel(
        g: &Graph,
        sources: &[Vertex],
        params: &MsrpParams,
        threads: usize,
    ) -> Self {
        Self::from_shards(build_shards(g, sources, params, threads))
    }

    /// CSR entry point of [`build_parallel`](Self::build_parallel): all shard workers traverse
    /// the caller's frozen view (no per-shard copy of the adjacency structure).
    pub fn build_parallel_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        threads: usize,
    ) -> Self {
        Self::from_shards(build_shards_csr(g, sources, params, threads))
    }

    /// Merges per-shard oracles (each covering a disjoint slice of the sources) into one
    /// oracle, concatenating the per-source rows in shard order.
    ///
    /// This is the merge half of [`build_parallel`](Self::build_parallel); it is public so
    /// that serving layers (`msrp-serve`) can build shards on their own schedule and still
    /// recover a single-oracle view.
    ///
    /// # Panics
    ///
    /// Panics if the shards are empty or share a source.
    pub fn from_shards(shards: Vec<ReplacementPathOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let mut sources = Vec::new();
        let mut trees = Vec::new();
        let mut distances = Vec::new();
        for shard in shards {
            sources.extend_from_slice(&shard.sources);
            trees.extend(shard.trees);
            distances.extend(shard.distances);
        }
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sources.len(), "shards must cover disjoint sources");
        ReplacementPathOracle { sources, trees, distances }
    }

    /// Wraps an existing solver output.
    pub fn from_msrp_output(out: MsrpOutput) -> Self {
        ReplacementPathOracle { sources: out.sources, trees: out.trees, distances: out.per_source }
    }

    /// Assembles an oracle from its parts: one canonical tree and one replacement table per
    /// source, in source order. This is how the Bernstein–Karger construction in [`bk`]
    /// hands over its output, and how a deserialized snapshot (`msrp-snap`) becomes a live
    /// oracle again without re-running any solver — the inverse of reading the parts back
    /// through [`sources`](Self::sources) / [`trees`](Self::trees) /
    /// [`per_source`](Self::per_source).
    ///
    /// # Panics
    ///
    /// Panics if the three vectors disagree in length, are empty, if two entries cover the
    /// same source, or if a tree is not rooted at its slot's source. Callers holding
    /// *untrusted* parts (a decoded snapshot) must validate before constructing — the
    /// snapshot loader does, and fails closed with a typed error instead of reaching these
    /// asserts.
    pub fn from_parts(
        sources: Vec<Vertex>,
        trees: Vec<ShortestPathTree>,
        distances: Vec<SourceReplacementDistances>,
    ) -> Self {
        assert!(!sources.is_empty(), "at least one source is required");
        assert_eq!(sources.len(), trees.len(), "one tree per source");
        assert_eq!(sources.len(), distances.len(), "one replacement table per source");
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sources.len(), "sources must be distinct");
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(trees[i].source(), s, "tree {i} is not rooted at its source");
        }
        ReplacementPathOracle { sources, trees, distances }
    }

    /// The canonical shortest-path trees, in source order (one per source).
    ///
    /// Together with [`per_source`](Self::per_source) this is the oracle's entire state;
    /// serializers persist exactly these parts and rebuild with
    /// [`from_parts`](Self::from_parts).
    pub fn trees(&self) -> &[ShortestPathTree] {
        &self.trees
    }

    /// The per-source replacement tables, in source order.
    ///
    /// Exposed so differential tests and experiments can compare two construction routes
    /// row-for-row with `==` (the rows are the oracle's entire answer state: two oracles over
    /// the same trees with equal rows answer every query identically).
    pub fn per_source(&self) -> &[SourceReplacementDistances] {
        &self.distances
    }

    /// Builds the oracle by brute force (one BFS per tree edge per source); exact, used as the
    /// comparator in tests and experiment E5. Freezes `g` once.
    pub fn build_exact(g: &Graph, sources: &[Vertex]) -> Self {
        Self::build_exact_csr(&g.freeze(), sources)
    }

    /// CSR entry point of [`build_exact`](Self::build_exact): both stages are bit-parallel.
    /// The source trees come from one [`bfs_trees_wave`] call (up to 64 sources per wave),
    /// and each source's edge-removal loop batches its tree edges into avoiding waves of up
    /// to 64 searches through one shared [`MultiBfsScratch`] — bit-identical to the
    /// sequential per-edge route (pinned by the wave differential tests), just far fewer
    /// passes over the CSR arrays.
    pub fn build_exact_csr(g: &CsrGraph, sources: &[Vertex]) -> Self {
        let mut wave = MultiBfsScratch::new();
        let trees = bfs_trees_wave(g, sources, &mut wave);
        let distances =
            trees.iter().map(|t| single_source_brute_force_wave(g, t, &mut wave)).collect();
        ReplacementPathOracle { sources: sources.to_vec(), trees, distances }
    }

    /// The sources the oracle was built for.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// Number of vertices of the graph the oracle was built over (0 for an oracle with no
    /// trees, which no public constructor produces).
    ///
    /// Serving layers validate incoming `target`/`edge` ids against this bound *before*
    /// querying: [`replacement_distance`](Self::replacement_distance) indexes its per-tree
    /// arrays with `t` and the edge endpoints, so out-of-range ids panic (see the
    /// `msrp-serve` protocol boundary).
    pub fn vertex_count(&self) -> usize {
        self.trees.first().map_or(0, |t| t.vertex_count())
    }

    /// Index of `s` among the sources.
    fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Fault-free distance from source `s` to `t` (`None` if `s` is not a source or `t` is
    /// unreachable).
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<Distance> {
        let i = self.source_index(s)?;
        self.trees[i].distance(t)
    }

    /// `QUERY(s, t, e)`: length of the shortest `s–t` path avoiding `e`, or `None` when `s` is
    /// not one of the sources. `Some(INFINITE_DISTANCE)` means the failure disconnects `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or an endpoint of `e` is at least [`vertex_count`](Self::vertex_count);
    /// callers exposed to untrusted ids must validate first (the serving boundary does).
    pub fn replacement_distance(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        let i = self.source_index(s)?;
        if !self.trees[i].is_reachable(t) {
            return Some(INFINITE_DISTANCE);
        }
        Some(self.distances[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// The canonical shortest path from `s` to `t`, if both exist.
    pub fn canonical_path(&self, s: Vertex, t: Vertex) -> Option<Vec<Vertex>> {
        let i = self.source_index(s)?;
        self.trees[i].path_from_source(t)
    }

    /// Total number of `(s, t, e)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.distances.iter().map(|d| d.entry_count()).sum()
    }

    /// Vickrey-style edge criticality for the `s–t` pair: for every edge on the canonical path,
    /// the increase in distance its failure causes (`None` when the failure disconnects `t`).
    ///
    /// This is the quantity the replacement-path literature uses to price edges owned by selfish
    /// agents (Nisan–Ronen; Hershberger–Suri), and what `msrp-netsim` builds on.
    pub fn detour_costs(&self, s: Vertex, t: Vertex) -> Option<Vec<(Edge, Option<Distance>)>> {
        let i = self.source_index(s)?;
        let tree = &self.trees[i];
        let base = tree.distance(t)?;
        let mut out = Vec::new();
        for (pos, e) in tree.path_edges(t).iter().enumerate() {
            let d = self.distances[i].get(t, pos)?;
            let cost = if d == INFINITE_DISTANCE { None } else { Some(d - base) };
            out.push((*e, cost));
        }
        Some(out)
    }

    /// Flattens the oracle into a cuckoo-hashed `(s, t, e) → d` table.
    pub fn flatten(&self) -> FlatReplacementOracle {
        FlatReplacementOracle::from_oracle(self)
    }
}

/// The oracle flattened into a single cuckoo hash table with worst-case `O(1)` probes
/// (Lemma 5 of the paper).
#[derive(Clone, Debug)]
pub struct FlatReplacementOracle {
    table: CuckooHashMap<(u32, u32, u64), Distance>,
    base: CuckooHashMap<(u32, u32), Distance>,
    /// Source-membership set. This used to be a `Vec` probed with `contains` — an `O(σ)`
    /// linear scan on *every* query, contradicting the worst-case `O(1)` bound the flat
    /// oracle exists to demonstrate; a third cuckoo probe restores the claim.
    source_set: CuckooHashMap<u32, ()>,
}

impl FlatReplacementOracle {
    /// Builds the flat table from a structured oracle.
    pub fn from_oracle(oracle: &ReplacementPathOracle) -> Self {
        let mut table = CuckooHashMap::with_capacity(2 * oracle.entry_count() + 16);
        let mut base = CuckooHashMap::new();
        let mut source_set = CuckooHashMap::with_capacity(2 * oracle.sources.len() + 16);
        for (i, &s) in oracle.sources.iter().enumerate() {
            source_set.insert(s as u32, ());
            let tree = &oracle.trees[i];
            for t in 0..tree.vertex_count() {
                if let Some(d) = tree.distance(t) {
                    base.insert((s as u32, t as u32), d);
                }
                for (pos, e) in tree.path_edges(t).iter().enumerate() {
                    if let Some(d) = oracle.distances[i].get(t, pos) {
                        table.insert((s as u32, t as u32, e.as_key()), d);
                    }
                }
            }
        }
        FlatReplacementOracle { table, base, source_set }
    }

    /// `QUERY(s, t, e)` with at most three hash probes — source membership, the stored entry
    /// when `e` is on the canonical path, and the fault-free distance otherwise — each
    /// worst-case `O(1)` (cuckoo hashing, Lemma 5). No step depends on `σ`.
    pub fn query(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        // Ids beyond u32 cannot be table keys: such an `s` is never a source, and such a
        // `t` is never reachable (the CSR substrate caps vertex ids at u32).
        let s32 = match u32::try_from(s) {
            Ok(s32) => s32,
            Err(_) => return None,
        };
        self.source_set.get(&s32)?;
        let t32 = match u32::try_from(t) {
            Ok(t32) => t32,
            Err(_) => return Some(INFINITE_DISTANCE),
        };
        // An edge endpoint beyond u32 cannot name a graph edge, and its 64-bit key would
        // alias a real edge's key after `(lo << 32) | hi` truncation (e.g. {0, 2³² + 5}
        // collides with {1, 5}) — such a failure is off every canonical path by
        // definition, so skip the table probe and fall through to the base distance.
        // Endpoints are normalized (lo < hi), so checking `hi` covers both.
        if u32::try_from(e.hi()).is_ok() {
            if let Some(&d) = self.table.get(&(s32, t32, e.as_key())) {
                return Some(d);
            }
        }
        match self.base.get(&(s32, t32)) {
            Some(&d) => Some(d),
            None => Some(INFINITE_DISTANCE),
        }
    }

    /// Number of `(s, t, e)` entries stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no replacement entries are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Splits `sources` into `shards` contiguous, non-empty, near-equal chunks (the first
/// `len % shards` chunks get one extra source). Concatenating the chunks in order yields the
/// original slice, which is what lets [`ReplacementPathOracle::from_shards`] preserve source
/// order.
///
/// # Panics
///
/// Panics if `shards` is zero or exceeds the number of sources.
pub fn shard_sources(sources: &[Vertex], shards: usize) -> Vec<&[Vertex]> {
    assert!(shards > 0, "at least one shard is required");
    assert!(shards <= sources.len(), "more shards ({shards}) than sources ({})", sources.len());
    let base = sources.len() / shards;
    let extra = sources.len() % shards;
    let mut chunks = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        chunks.push(&sources[start..start + len]);
        start += len;
    }
    chunks
}

/// Builds one [`ReplacementPathOracle`] per shard, in parallel (one `std::thread` worker per
/// shard, scoped). This is the construction half of
/// [`ReplacementPathOracle::build_parallel`]; it is public so that serving layers
/// (`msrp-serve`'s `ShardedOracle`) can keep the shards separate instead of merging them.
///
/// Freezes `g` into a [`CsrGraph`] once and hands every worker the same frozen view; see
/// [`build_shards_csr`].
///
/// `threads == 0` is treated as 1 (built inline, no thread spawned); thread counts above σ
/// are clamped to σ.
///
/// # Panics
///
/// Panics on the inputs [`ReplacementPathOracle::build`] rejects (empty, duplicate, or
/// out-of-range sources), and if a worker thread panics.
pub fn build_shards(
    g: &Graph,
    sources: &[Vertex],
    params: &MsrpParams,
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    build_shards_csr(&g.freeze(), sources, params, threads)
}

/// CSR entry point of [`build_shards`]: every scoped worker traverses the *same* frozen
/// graph through a shared reference — the adjacency structure is built exactly once, no
/// matter how many shards are constructed (an `Arc<CsrGraph>` gives the same sharing to
/// non-scoped callers).
///
/// # Panics
///
/// Same as [`build_shards`].
pub fn build_shards_csr(
    g: &CsrGraph,
    sources: &[Vertex],
    params: &MsrpParams,
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        return vec![ReplacementPathOracle::build_csr(g, sources, params)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_sources(sources, threads)
            .into_iter()
            .map(|chunk| scope.spawn(move || ReplacementPathOracle::build_csr(g, chunk, params)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("oracle shard worker panicked")).collect()
    })
}

/// A single-edge-fault distance oracle over *weighted* graphs: the weighted mirror of
/// [`ReplacementPathOracle`], answering `QUERY(x, y, e)` under the weighted metric from
/// Dijkstra shortest-path trees.
///
/// ```
/// use msrp_graph::{Edge, WeightedGraph};
/// use msrp_oracle::WeightedReplacementOracle;
///
/// # fn main() -> Result<(), msrp_graph::GraphError> {
/// let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 10)])?;
/// let oracle = WeightedReplacementOracle::build(&g.freeze(), &[0]);
/// assert_eq!(oracle.distance(0, 2), Some(2));
/// assert_eq!(oracle.replacement_distance(0, 2, Edge::new(1, 2)), Some(11));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WeightedReplacementOracle {
    sources: Vec<Vertex>,
    trees: Vec<WeightedTree>,
    distances: Vec<WeightedReplacementDistances>,
}

impl WeightedReplacementOracle {
    /// Builds the oracle by running the weighted solver (`msrp_core::solve_msrp_weighted`,
    /// the crossing-edge / subtree-Dijkstra algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty, contains duplicates, or contains an out-of-range
    /// vertex.
    pub fn build(g: &WeightedCsrGraph, sources: &[Vertex]) -> Self {
        Self::from_output(solve_msrp_weighted(g, sources))
    }

    /// Wraps an existing weighted solver output.
    pub fn from_output(out: WeightedMsrpOutput) -> Self {
        WeightedReplacementOracle {
            sources: out.sources,
            trees: out.trees,
            distances: out.per_source,
        }
    }

    /// Assembles a weighted oracle from its parts — the weighted mirror of
    /// [`ReplacementPathOracle::from_parts`], and the reconstruction path a deserialized
    /// snapshot (`msrp-snap`) boots through.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ReplacementPathOracle::from_parts`]
    /// (length mismatch, empty or duplicate sources, a tree rooted elsewhere). Untrusted
    /// parts must be validated by the caller first; the snapshot loader fails closed with
    /// a typed error instead of reaching these asserts.
    pub fn from_parts(
        sources: Vec<Vertex>,
        trees: Vec<WeightedTree>,
        distances: Vec<WeightedReplacementDistances>,
    ) -> Self {
        assert!(!sources.is_empty(), "at least one source is required");
        assert_eq!(sources.len(), trees.len(), "one tree per source");
        assert_eq!(sources.len(), distances.len(), "one replacement table per source");
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sources.len(), "sources must be distinct");
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(trees[i].source(), s, "tree {i} is not rooted at its source");
        }
        WeightedReplacementOracle { sources, trees, distances }
    }

    /// The canonical Dijkstra trees, in source order (one per source); with
    /// [`per_source`](Self::per_source) this is the oracle's entire state.
    pub fn trees(&self) -> &[WeightedTree] {
        &self.trees
    }

    /// The per-source weighted replacement tables, in source order (the weighted mirror of
    /// [`ReplacementPathOracle::per_source`]).
    pub fn per_source(&self) -> &[WeightedReplacementDistances] {
        &self.distances
    }

    /// Builds the oracle by brute force (one Dijkstra per tree edge per source, all through
    /// one shared [`DijkstraScratch`]); exact, the comparator of the weighted solver in
    /// tests and experiment E9.
    pub fn build_exact(g: &WeightedCsrGraph, sources: &[Vertex]) -> Self {
        let mut scratch = DijkstraScratch::new();
        let trees: Vec<_> =
            sources.iter().map(|&s| WeightedTree::build_with_scratch(g, s, &mut scratch)).collect();
        let distances =
            trees.iter().map(|t| single_source_brute_force_weighted(g, t, &mut scratch)).collect();
        WeightedReplacementOracle { sources: sources.to_vec(), trees, distances }
    }

    /// Merges per-shard weighted oracles (disjoint source slices) into one, concatenating
    /// the per-source rows in shard order — the weighted mirror of
    /// [`ReplacementPathOracle::from_shards`].
    ///
    /// # Panics
    ///
    /// Panics if the shards are empty or share a source.
    pub fn from_shards(shards: Vec<WeightedReplacementOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let mut sources = Vec::new();
        let mut trees = Vec::new();
        let mut distances = Vec::new();
        for shard in shards {
            sources.extend_from_slice(&shard.sources);
            trees.extend(shard.trees);
            distances.extend(shard.distances);
        }
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sources.len(), "shards must cover disjoint sources");
        WeightedReplacementOracle { sources, trees, distances }
    }

    /// The sources the oracle was built for.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// Number of vertices of the graph the oracle was built over (see
    /// [`ReplacementPathOracle::vertex_count`] for why serving layers validate against it).
    pub fn vertex_count(&self) -> usize {
        self.trees.first().map_or(0, |t| t.vertex_count())
    }

    fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Fault-free weighted distance from source `s` to `t` (`None` if `s` is not a source
    /// or `t` is unreachable).
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<Weight> {
        let i = self.source_index(s)?;
        self.trees[i].distance(t)
    }

    /// `QUERY(s, t, e)` under the weighted metric, or `None` when `s` is not one of the
    /// sources. `Some(INFINITE_WEIGHT)` means the failure disconnects `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or an endpoint of `e` is at least [`vertex_count`](Self::vertex_count);
    /// callers exposed to untrusted ids must validate first (the serving boundary does).
    pub fn replacement_distance(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Weight> {
        let i = self.source_index(s)?;
        if !self.trees[i].is_reachable(t) {
            return Some(INFINITE_WEIGHT);
        }
        Some(self.distances[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// The canonical (Dijkstra-tree) shortest path from `s` to `t`, if both exist.
    pub fn canonical_path(&self, s: Vertex, t: Vertex) -> Option<Vec<Vertex>> {
        let i = self.source_index(s)?;
        self.trees[i].path_from_source(t)
    }

    /// Total number of `(s, t, e)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.distances.iter().map(|d| d.entry_count()).sum()
    }
}

/// Builds one [`WeightedReplacementOracle`] per shard, in parallel (one scoped worker per
/// shard over the caller's frozen weighted view) — the weighted mirror of
/// [`build_shards_csr`], consumed by `msrp-serve`'s `WeightedShardedOracle`.
///
/// `threads == 0` is treated as 1 (built inline); thread counts above σ are clamped to σ.
///
/// # Panics
///
/// Panics on the inputs [`WeightedReplacementOracle::build`] rejects, and if a worker
/// thread panics.
pub fn build_weighted_shards(
    g: &WeightedCsrGraph,
    sources: &[Vertex],
    threads: usize,
) -> Vec<WeightedReplacementOracle> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        return vec![WeightedReplacementOracle::build(g, sources)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_sources(sources, threads)
            .into_iter()
            .map(|chunk| scope.spawn(move || WeightedReplacementOracle::build(g, chunk)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("oracle shard worker panicked")).collect()
    })
}

// The serving layer (`msrp-serve`) shares immutable oracles across worker threads; these
// compile-time assertions make sure a future refactor cannot silently lose thread-safety
// (e.g. by introducing `Rc` or interior mutability into the oracle or its substrates).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<ReplacementPathOracle>();
    assert_send_sync::<FlatReplacementOracle>();
    assert_send_sync::<WeightedReplacementOracle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, path_graph};
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_matches_exact_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = connected_gnm(28, 64, &mut rng).unwrap();
        let sources = [0usize, 9, 17];
        let fast = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
        let exact = ReplacementPathOracle::build_exact(&g, &sources);
        for &s in &sources {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(
                        fast.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "s={s} t={t} e={e}"
                    );
                }
            }
        }
        assert_eq!(fast.entry_count(), exact.entry_count());
    }

    #[test]
    fn queries_for_non_sources_return_none() {
        let g = cycle_graph(6);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(3, 5, Edge::new(0, 1)), None);
        assert_eq!(oracle.distance(3, 5), None);
        assert_eq!(oracle.canonical_path(3, 5), None);
        assert_eq!(oracle.sources(), &[0]);
    }

    #[test]
    fn disconnections_are_reported_as_infinite() {
        let g = path_graph(5);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(0, 4, Edge::new(2, 3)), Some(INFINITE_DISTANCE));
        let costs = oracle.detour_costs(0, 4).unwrap();
        assert!(costs.iter().all(|(_, c)| c.is_none()));
    }

    #[test]
    fn detour_costs_match_definition() {
        let g = cycle_graph(8);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        let costs = oracle.detour_costs(0, 3).unwrap();
        assert_eq!(costs.len(), 3);
        for (e, c) in costs {
            let truth = replacement_distance(&g, 0, 3, e);
            assert_eq!(c, Some(truth - 3));
        }
    }

    #[test]
    fn flat_oracle_agrees_with_structured_oracle() {
        let g = grid_graph(4, 4);
        let oracle = ReplacementPathOracle::build(&g, &[0, 15], &MsrpParams::default());
        let flat = oracle.flatten();
        assert_eq!(flat.len(), oracle.entry_count());
        assert!(!flat.is_empty());
        for &s in oracle.sources() {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(flat.query(s, t, e), oracle.replacement_distance(s, t, e));
                }
            }
        }
        assert_eq!(flat.query(7, 0, Edge::new(0, 1)), None);
    }

    #[test]
    fn shard_sources_partitions_in_order() {
        let sources = [3usize, 1, 4, 1, 5, 9, 2];
        for shards in 1..=sources.len() {
            let chunks = shard_sources(&sources, shards);
            assert_eq!(chunks.len(), shards);
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let max = chunks.iter().map(|c| c.len()).max().unwrap();
            let min = chunks.iter().map(|c| c.len()).min().unwrap();
            assert!(max - min <= 1, "chunks must be near-equal");
            let rejoined: Vec<_> = chunks.concat();
            assert_eq!(rejoined, sources);
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn shard_sources_rejects_more_shards_than_sources() {
        let _ = shard_sources(&[0, 1], 3);
    }

    #[test]
    fn parallel_build_agrees_with_sequential_build() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = connected_gnm(30, 70, &mut rng).unwrap();
        let sources = [0usize, 5, 11, 17, 23, 29];
        let sequential = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
        for threads in [0usize, 1, 2, 3, 4, 16] {
            let parallel = ReplacementPathOracle::build_parallel(
                &g,
                &sources,
                &MsrpParams::default(),
                threads,
            );
            assert_eq!(parallel.sources(), &sources);
            for &s in &sources {
                for t in 0..g.vertex_count() {
                    assert_eq!(parallel.distance(s, t), sequential.distance(s, t));
                    for e in g.edges() {
                        assert_eq!(
                            parallel.replacement_distance(s, t, e),
                            sequential.replacement_distance(s, t, e),
                            "threads={threads} s={s} t={t} e={e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn from_shards_preserves_source_order() {
        let g = cycle_graph(10);
        let shards = vec![
            ReplacementPathOracle::build_exact(&g, &[4, 1]),
            ReplacementPathOracle::build_exact(&g, &[7]),
        ];
        let merged = ReplacementPathOracle::from_shards(shards);
        assert_eq!(merged.sources(), &[4, 1, 7]);
        let whole = ReplacementPathOracle::build_exact(&g, &[4, 1, 7]);
        for &s in merged.sources() {
            for t in 0..10 {
                for e in g.edges() {
                    assert_eq!(
                        merged.replacement_distance(s, t, e),
                        whole.replacement_distance(s, t, e)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_shards_panic() {
        let g = cycle_graph(6);
        let shards = vec![
            ReplacementPathOracle::build_exact(&g, &[0, 2]),
            ReplacementPathOracle::build_exact(&g, &[2]),
        ];
        let _ = ReplacementPathOracle::from_shards(shards);
    }

    #[test]
    fn canonical_paths_are_exposed() {
        let g = cycle_graph(7);
        let oracle = ReplacementPathOracle::build_exact(&g, &[2]);
        assert_eq!(oracle.canonical_path(2, 4), Some(vec![2, 3, 4]));
    }

    #[test]
    fn vertex_count_is_exposed_for_boundary_validation() {
        let g = cycle_graph(9);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0, 4]);
        assert_eq!(oracle.vertex_count(), 9);
    }

    #[test]
    fn flat_oracle_membership_is_probe_based_not_a_scan() {
        // Build with a large, deliberately scrambled source set: every query must resolve
        // source membership through the cuckoo set (worst-case O(1) probes, Lemma 5), and
        // the answers must stay identical to the structured oracle's.
        let mut rng = StdRng::seed_from_u64(31);
        let g = connected_gnm(40, 100, &mut rng).unwrap();
        let sources: Vec<usize> = vec![31, 2, 17, 39, 8, 25, 0, 12, 36, 5, 21, 29];
        let oracle = ReplacementPathOracle::build_exact(&g, &sources);
        let flat = oracle.flatten();
        for &s in &sources {
            for t in (0..40).step_by(7) {
                for e in g.edges().take(20) {
                    assert_eq!(flat.query(s, t, e), oracle.replacement_distance(s, t, e));
                }
            }
        }
        // Non-sources (including ids far outside the graph) answer None without scanning.
        for s in [1usize, 3, 38, 40, 10_000, usize::MAX] {
            assert_eq!(flat.query(s, 0, Edge::new(0, 1)), None, "s={s}");
        }
        // A valid source with an absurd target reports "no path", never a truncated hit.
        assert_eq!(flat.query(31, usize::MAX, Edge::new(0, 1)), Some(INFINITE_DISTANCE));
        // A hostile >u32 edge endpoint must not truncation-alias a real edge's key:
        // {0, 2^32 + 5} shares its `(lo << 32) | hi` key with {1, 5}. The hostile edge is
        // not in the graph, so the answer must be the fault-free base distance even where
        // the aliased real edge lies on the canonical path.
        for &s in &sources {
            for t in 0..40 {
                let hostile = Edge::new(0, (1usize << 32) + 5);
                assert_eq!(hostile.as_key(), Edge::new(1, 5).as_key(), "aliasing premise");
                assert_eq!(
                    flat.query(s, t, hostile),
                    oracle.distance(s, t).or(Some(INFINITE_DISTANCE)),
                    "s={s} t={t}"
                );
            }
        }
    }

    #[test]
    fn weighted_oracle_solver_and_brute_force_agree() {
        let mut rng = StdRng::seed_from_u64(13);
        let g =
            msrp_graph::generators::weighted_connected_gnm(28, 64, 500, &mut rng).unwrap().freeze();
        let sources = [0usize, 9, 17];
        let fast = WeightedReplacementOracle::build(&g, &sources);
        let exact = WeightedReplacementOracle::build_exact(&g, &sources);
        assert_eq!(fast.entry_count(), exact.entry_count());
        assert_eq!(fast.vertex_count(), 28);
        for &s in &sources {
            for t in 0..28 {
                assert_eq!(fast.distance(s, t), exact.distance(s, t));
                for (e, _) in g.edge_vec() {
                    assert_eq!(
                        fast.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "s={s} t={t} e={e}"
                    );
                }
            }
        }
        assert_eq!(fast.replacement_distance(3, 5, Edge::new(0, 1)), None);
        assert_eq!(fast.sources(), &sources);
        assert!(fast.canonical_path(0, 9).is_some());
    }

    #[test]
    fn weighted_shards_merge_and_agree() {
        let mut rng = StdRng::seed_from_u64(21);
        let g =
            msrp_graph::generators::weighted_connected_gnm(24, 60, 50, &mut rng).unwrap().freeze();
        let sources = [4usize, 1, 7, 19, 11];
        let whole = WeightedReplacementOracle::build(&g, &sources);
        for threads in [0usize, 1, 2, 5, 16] {
            let shards = build_weighted_shards(&g, &sources, threads);
            let merged = WeightedReplacementOracle::from_shards(shards);
            assert_eq!(merged.sources(), &sources);
            for &s in &sources {
                for t in 0..24 {
                    for (e, _) in g.edge_vec() {
                        assert_eq!(
                            merged.replacement_distance(s, t, e),
                            whole.replacement_distance(s, t, e),
                            "threads={threads} s={s} t={t} e={e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_weighted_shards_panic() {
        let mut rng = StdRng::seed_from_u64(2);
        let g =
            msrp_graph::generators::weighted_connected_gnm(8, 12, 9, &mut rng).unwrap().freeze();
        let shards = vec![
            WeightedReplacementOracle::build_exact(&g, &[0, 2]),
            WeightedReplacementOracle::build_exact(&g, &[2]),
        ];
        let _ = WeightedReplacementOracle::from_shards(shards);
    }
}
