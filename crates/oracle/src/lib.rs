//! Single-fault replacement-path distance oracles.
//!
//! Bernstein and Karger (STOC 2009) build, for *all* sources, a distance oracle of size `Õ(n²)`
//! answering `QUERY(x, y, e)` — the length of the shortest `x–y` path avoiding the edge `e` — in
//! `O(1)` time; the MSRP paper generalizes the preprocessing to an arbitrary number of sources
//! `σ`. This crate packages the solver output of `msrp-core` behind that query interface:
//!
//! * [`ReplacementPathOracle`] — per-source rows indexed by the canonical-path position of the
//!   avoided edge (compact, cache friendly);
//! * [`FlatReplacementOracle`] — the same data flattened into a cuckoo hash table keyed by
//!   `(source, target, edge)`, demonstrating the worst-case `O(1)` lookup structure the paper
//!   cites (Pagh–Rodler, Lemma 5);
//! * [`build_exact`](ReplacementPathOracle::build_exact) — a brute-force construction used as
//!   the ground-truth comparator (the substitution for the full Bernstein–Karger preprocessing,
//!   see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use msrp_core::{solve_msrp, MsrpOutput, MsrpParams};
use msrp_graph::{
    CuckooHashMap, Distance, Edge, Graph, ShortestPathTree, Vertex, INFINITE_DISTANCE,
};
use msrp_rpath::{single_source_brute_force, SourceReplacementDistances};

/// A single-edge-fault distance oracle for a fixed set of sources.
///
/// ```
/// use msrp_graph::{generators::cycle_graph, Edge};
/// use msrp_oracle::ReplacementPathOracle;
/// use msrp_core::MsrpParams;
///
/// let g = cycle_graph(8);
/// let oracle = ReplacementPathOracle::build(&g, &[0, 4], &MsrpParams::default());
/// assert_eq!(oracle.distance(0, 3), Some(3));
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(1, 2)), Some(5));
/// // Edges off the canonical path do not hurt.
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(5, 6)), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct ReplacementPathOracle {
    sources: Vec<Vertex>,
    trees: Vec<ShortestPathTree>,
    distances: Vec<SourceReplacementDistances>,
}

impl ReplacementPathOracle {
    /// Builds the oracle by running the paper's MSRP algorithm.
    pub fn build(g: &Graph, sources: &[Vertex], params: &MsrpParams) -> Self {
        let out = solve_msrp(g, sources, params);
        Self::from_msrp_output(out)
    }

    /// Wraps an existing solver output.
    pub fn from_msrp_output(out: MsrpOutput) -> Self {
        ReplacementPathOracle { sources: out.sources, trees: out.trees, distances: out.per_source }
    }

    /// Builds the oracle by brute force (one BFS per tree edge per source); exact, used as the
    /// comparator in tests and experiment E5.
    pub fn build_exact(g: &Graph, sources: &[Vertex]) -> Self {
        let trees: Vec<_> = sources.iter().map(|&s| ShortestPathTree::build(g, s)).collect();
        let distances = trees.iter().map(|t| single_source_brute_force(g, t)).collect();
        ReplacementPathOracle { sources: sources.to_vec(), trees, distances }
    }

    /// The sources the oracle was built for.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// Index of `s` among the sources.
    fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Fault-free distance from source `s` to `t` (`None` if `s` is not a source or `t` is
    /// unreachable).
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<Distance> {
        let i = self.source_index(s)?;
        self.trees[i].distance(t)
    }

    /// `QUERY(s, t, e)`: length of the shortest `s–t` path avoiding `e`, or `None` when `s` is
    /// not one of the sources. `Some(INFINITE_DISTANCE)` means the failure disconnects `t`.
    pub fn replacement_distance(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        let i = self.source_index(s)?;
        if !self.trees[i].is_reachable(t) {
            return Some(INFINITE_DISTANCE);
        }
        Some(self.distances[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// The canonical shortest path from `s` to `t`, if both exist.
    pub fn canonical_path(&self, s: Vertex, t: Vertex) -> Option<Vec<Vertex>> {
        let i = self.source_index(s)?;
        self.trees[i].path_from_source(t)
    }

    /// Total number of `(s, t, e)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.distances.iter().map(|d| d.entry_count()).sum()
    }

    /// Vickrey-style edge criticality for the `s–t` pair: for every edge on the canonical path,
    /// the increase in distance its failure causes (`None` when the failure disconnects `t`).
    ///
    /// This is the quantity the replacement-path literature uses to price edges owned by selfish
    /// agents (Nisan–Ronen; Hershberger–Suri), and what `msrp-netsim` builds on.
    pub fn detour_costs(&self, s: Vertex, t: Vertex) -> Option<Vec<(Edge, Option<Distance>)>> {
        let i = self.source_index(s)?;
        let tree = &self.trees[i];
        let base = tree.distance(t)?;
        let mut out = Vec::new();
        for (pos, e) in tree.path_edges(t).iter().enumerate() {
            let d = self.distances[i].get(t, pos)?;
            let cost = if d == INFINITE_DISTANCE { None } else { Some(d - base) };
            out.push((*e, cost));
        }
        Some(out)
    }

    /// Flattens the oracle into a cuckoo-hashed `(s, t, e) → d` table.
    pub fn flatten(&self) -> FlatReplacementOracle {
        FlatReplacementOracle::from_oracle(self)
    }
}

/// The oracle flattened into a single cuckoo hash table with worst-case `O(1)` probes
/// (Lemma 5 of the paper).
#[derive(Clone, Debug)]
pub struct FlatReplacementOracle {
    table: CuckooHashMap<(u32, u32, u64), Distance>,
    base: CuckooHashMap<(u32, u32), Distance>,
    sources: Vec<Vertex>,
}

impl FlatReplacementOracle {
    /// Builds the flat table from a structured oracle.
    pub fn from_oracle(oracle: &ReplacementPathOracle) -> Self {
        let mut table = CuckooHashMap::with_capacity(2 * oracle.entry_count() + 16);
        let mut base = CuckooHashMap::new();
        for (i, &s) in oracle.sources.iter().enumerate() {
            let tree = &oracle.trees[i];
            for t in 0..tree.vertex_count() {
                if let Some(d) = tree.distance(t) {
                    base.insert((s as u32, t as u32), d);
                }
                for (pos, e) in tree.path_edges(t).iter().enumerate() {
                    if let Some(d) = oracle.distances[i].get(t, pos) {
                        table.insert((s as u32, t as u32, e.as_key()), d);
                    }
                }
            }
        }
        FlatReplacementOracle { table, base, sources: oracle.sources.clone() }
    }

    /// `QUERY(s, t, e)` with two hash probes: the stored entry when `e` is on the canonical
    /// path, the fault-free distance otherwise.
    pub fn query(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        if !self.sources.contains(&s) {
            return None;
        }
        if let Some(&d) = self.table.get(&(s as u32, t as u32, e.as_key())) {
            return Some(d);
        }
        match self.base.get(&(s as u32, t as u32)) {
            Some(&d) => Some(d),
            None => Some(INFINITE_DISTANCE),
        }
    }

    /// Number of `(s, t, e)` entries stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no replacement entries are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, path_graph};
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_matches_exact_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = connected_gnm(28, 64, &mut rng).unwrap();
        let sources = [0usize, 9, 17];
        let fast = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
        let exact = ReplacementPathOracle::build_exact(&g, &sources);
        for &s in &sources {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(
                        fast.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "s={s} t={t} e={e}"
                    );
                }
            }
        }
        assert_eq!(fast.entry_count(), exact.entry_count());
    }

    #[test]
    fn queries_for_non_sources_return_none() {
        let g = cycle_graph(6);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(3, 5, Edge::new(0, 1)), None);
        assert_eq!(oracle.distance(3, 5), None);
        assert_eq!(oracle.canonical_path(3, 5), None);
        assert_eq!(oracle.sources(), &[0]);
    }

    #[test]
    fn disconnections_are_reported_as_infinite() {
        let g = path_graph(5);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(0, 4, Edge::new(2, 3)), Some(INFINITE_DISTANCE));
        let costs = oracle.detour_costs(0, 4).unwrap();
        assert!(costs.iter().all(|(_, c)| c.is_none()));
    }

    #[test]
    fn detour_costs_match_definition() {
        let g = cycle_graph(8);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        let costs = oracle.detour_costs(0, 3).unwrap();
        assert_eq!(costs.len(), 3);
        for (e, c) in costs {
            let truth = replacement_distance(&g, 0, 3, e);
            assert_eq!(c, Some(truth - 3));
        }
    }

    #[test]
    fn flat_oracle_agrees_with_structured_oracle() {
        let g = grid_graph(4, 4);
        let oracle = ReplacementPathOracle::build(&g, &[0, 15], &MsrpParams::default());
        let flat = oracle.flatten();
        assert_eq!(flat.len(), oracle.entry_count());
        assert!(!flat.is_empty());
        for &s in oracle.sources() {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(flat.query(s, t, e), oracle.replacement_distance(s, t, e));
                }
            }
        }
        assert_eq!(flat.query(7, 0, Edge::new(0, 1)), None);
    }

    #[test]
    fn canonical_paths_are_exposed() {
        let g = cycle_graph(7);
        let oracle = ReplacementPathOracle::build_exact(&g, &[2]);
        assert_eq!(oracle.canonical_path(2, 4), Some(vec![2, 3, 4]));
    }
}
