//! Single-fault replacement-path distance oracles.
//!
//! Bernstein and Karger (STOC 2009) build, for *all* sources, a distance oracle of size `Õ(n²)`
//! answering `QUERY(x, y, e)` — the length of the shortest `x–y` path avoiding the edge `e` — in
//! `O(1)` time; the MSRP paper generalizes the preprocessing to an arbitrary number of sources
//! `σ`. This crate packages the solver output of `msrp-core` behind that query interface:
//!
//! * [`ReplacementPathOracle`] — per-source rows indexed by the canonical-path position of the
//!   avoided edge (compact, cache friendly);
//! * [`FlatReplacementOracle`] — the same data flattened into a cuckoo hash table keyed by
//!   `(source, target, edge)`, demonstrating the worst-case `O(1)` lookup structure the paper
//!   cites (Pagh–Rodler, Lemma 5);
//! * [`build_exact`](ReplacementPathOracle::build_exact) — a brute-force construction used as
//!   the ground-truth comparator (the substitution for the full Bernstein–Karger preprocessing,
//!   see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use msrp_core::{solve_msrp_csr, MsrpOutput, MsrpParams};
use msrp_graph::{
    BfsScratch, CsrGraph, CuckooHashMap, Distance, Edge, Graph, ShortestPathTree, Vertex,
    INFINITE_DISTANCE,
};
use msrp_rpath::single_source_brute_force_with_scratch;
use msrp_rpath::SourceReplacementDistances;

/// A single-edge-fault distance oracle for a fixed set of sources.
///
/// ```
/// use msrp_graph::{generators::cycle_graph, Edge};
/// use msrp_oracle::ReplacementPathOracle;
/// use msrp_core::MsrpParams;
///
/// let g = cycle_graph(8);
/// let oracle = ReplacementPathOracle::build(&g, &[0, 4], &MsrpParams::default());
/// assert_eq!(oracle.distance(0, 3), Some(3));
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(1, 2)), Some(5));
/// // Edges off the canonical path do not hurt.
/// assert_eq!(oracle.replacement_distance(0, 3, Edge::new(5, 6)), Some(3));
/// ```
#[derive(Clone, Debug)]
pub struct ReplacementPathOracle {
    sources: Vec<Vertex>,
    trees: Vec<ShortestPathTree>,
    distances: Vec<SourceReplacementDistances>,
}

impl ReplacementPathOracle {
    /// Builds the oracle by running the paper's MSRP algorithm (freezes `g` once and runs
    /// every traversal over the CSR view).
    pub fn build(g: &Graph, sources: &[Vertex], params: &MsrpParams) -> Self {
        Self::build_csr(&g.freeze(), sources, params)
    }

    /// CSR entry point of [`build`](Self::build) for callers that already hold a frozen view.
    pub fn build_csr(g: &CsrGraph, sources: &[Vertex], params: &MsrpParams) -> Self {
        let out = solve_msrp_csr(g, sources, params);
        Self::from_msrp_output(out)
    }

    /// Builds the oracle in parallel by sharding the σ sources across `threads` workers.
    ///
    /// The per-source solves of `msrp_core` are independent, so each worker runs the full MSRP
    /// solver on a contiguous shard of the sources (see [`shard_sources`]) and the per-source
    /// rows are merged back in input order with [`from_shards`](Self::from_shards). The sharding is a pure
    /// function of `(sources, threads)`, so a given `(graph, sources, params, threads)` tuple
    /// always reproduces the same oracle; and because every construction route computes the
    /// same replacement *distances*, answers agree across thread counts whenever the solver is
    /// exact (always, under `MsrpParams::default()` on the seeds the test-suite pins — see
    /// `DESIGN.md`, "Determinism policy").
    ///
    /// `threads == 0` is treated as 1; thread counts above σ are clamped to σ.
    ///
    /// # Panics
    ///
    /// Panics on the same inputs as [`build`](Self::build) (empty, duplicate, or out-of-range
    /// sources), and if a worker thread panics.
    pub fn build_parallel(
        g: &Graph,
        sources: &[Vertex],
        params: &MsrpParams,
        threads: usize,
    ) -> Self {
        Self::from_shards(build_shards(g, sources, params, threads))
    }

    /// CSR entry point of [`build_parallel`](Self::build_parallel): all shard workers traverse
    /// the caller's frozen view (no per-shard copy of the adjacency structure).
    pub fn build_parallel_csr(
        g: &CsrGraph,
        sources: &[Vertex],
        params: &MsrpParams,
        threads: usize,
    ) -> Self {
        Self::from_shards(build_shards_csr(g, sources, params, threads))
    }

    /// Merges per-shard oracles (each covering a disjoint slice of the sources) into one
    /// oracle, concatenating the per-source rows in shard order.
    ///
    /// This is the merge half of [`build_parallel`](Self::build_parallel); it is public so
    /// that serving layers (`msrp-serve`) can build shards on their own schedule and still
    /// recover a single-oracle view.
    ///
    /// # Panics
    ///
    /// Panics if the shards are empty or share a source.
    pub fn from_shards(shards: Vec<ReplacementPathOracle>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let mut sources = Vec::new();
        let mut trees = Vec::new();
        let mut distances = Vec::new();
        for shard in shards {
            sources.extend_from_slice(&shard.sources);
            trees.extend(shard.trees);
            distances.extend(shard.distances);
        }
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sources.len(), "shards must cover disjoint sources");
        ReplacementPathOracle { sources, trees, distances }
    }

    /// Wraps an existing solver output.
    pub fn from_msrp_output(out: MsrpOutput) -> Self {
        ReplacementPathOracle { sources: out.sources, trees: out.trees, distances: out.per_source }
    }

    /// Builds the oracle by brute force (one BFS per tree edge per source); exact, used as the
    /// comparator in tests and experiment E5. Freezes `g` once.
    pub fn build_exact(g: &Graph, sources: &[Vertex]) -> Self {
        Self::build_exact_csr(&g.freeze(), sources)
    }

    /// CSR entry point of [`build_exact`](Self::build_exact): the whole edge-removal loop —
    /// one BFS per tree edge per source — runs through a single shared [`BfsScratch`], so it
    /// performs no per-BFS allocation.
    pub fn build_exact_csr(g: &CsrGraph, sources: &[Vertex]) -> Self {
        let mut scratch = BfsScratch::new();
        let trees: Vec<_> = sources
            .iter()
            .map(|&s| ShortestPathTree::build_with_scratch(g, s, &mut scratch))
            .collect();
        let distances = trees
            .iter()
            .map(|t| single_source_brute_force_with_scratch(g, t, &mut scratch))
            .collect();
        ReplacementPathOracle { sources: sources.to_vec(), trees, distances }
    }

    /// The sources the oracle was built for.
    pub fn sources(&self) -> &[Vertex] {
        &self.sources
    }

    /// Index of `s` among the sources.
    fn source_index(&self, s: Vertex) -> Option<usize> {
        self.sources.iter().position(|&x| x == s)
    }

    /// Fault-free distance from source `s` to `t` (`None` if `s` is not a source or `t` is
    /// unreachable).
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<Distance> {
        let i = self.source_index(s)?;
        self.trees[i].distance(t)
    }

    /// `QUERY(s, t, e)`: length of the shortest `s–t` path avoiding `e`, or `None` when `s` is
    /// not one of the sources. `Some(INFINITE_DISTANCE)` means the failure disconnects `t`.
    pub fn replacement_distance(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        let i = self.source_index(s)?;
        if !self.trees[i].is_reachable(t) {
            return Some(INFINITE_DISTANCE);
        }
        Some(self.distances[i].distance_avoiding(&self.trees[i], t, e))
    }

    /// The canonical shortest path from `s` to `t`, if both exist.
    pub fn canonical_path(&self, s: Vertex, t: Vertex) -> Option<Vec<Vertex>> {
        let i = self.source_index(s)?;
        self.trees[i].path_from_source(t)
    }

    /// Total number of `(s, t, e)` entries stored.
    pub fn entry_count(&self) -> usize {
        self.distances.iter().map(|d| d.entry_count()).sum()
    }

    /// Vickrey-style edge criticality for the `s–t` pair: for every edge on the canonical path,
    /// the increase in distance its failure causes (`None` when the failure disconnects `t`).
    ///
    /// This is the quantity the replacement-path literature uses to price edges owned by selfish
    /// agents (Nisan–Ronen; Hershberger–Suri), and what `msrp-netsim` builds on.
    pub fn detour_costs(&self, s: Vertex, t: Vertex) -> Option<Vec<(Edge, Option<Distance>)>> {
        let i = self.source_index(s)?;
        let tree = &self.trees[i];
        let base = tree.distance(t)?;
        let mut out = Vec::new();
        for (pos, e) in tree.path_edges(t).iter().enumerate() {
            let d = self.distances[i].get(t, pos)?;
            let cost = if d == INFINITE_DISTANCE { None } else { Some(d - base) };
            out.push((*e, cost));
        }
        Some(out)
    }

    /// Flattens the oracle into a cuckoo-hashed `(s, t, e) → d` table.
    pub fn flatten(&self) -> FlatReplacementOracle {
        FlatReplacementOracle::from_oracle(self)
    }
}

/// The oracle flattened into a single cuckoo hash table with worst-case `O(1)` probes
/// (Lemma 5 of the paper).
#[derive(Clone, Debug)]
pub struct FlatReplacementOracle {
    table: CuckooHashMap<(u32, u32, u64), Distance>,
    base: CuckooHashMap<(u32, u32), Distance>,
    sources: Vec<Vertex>,
}

impl FlatReplacementOracle {
    /// Builds the flat table from a structured oracle.
    pub fn from_oracle(oracle: &ReplacementPathOracle) -> Self {
        let mut table = CuckooHashMap::with_capacity(2 * oracle.entry_count() + 16);
        let mut base = CuckooHashMap::new();
        for (i, &s) in oracle.sources.iter().enumerate() {
            let tree = &oracle.trees[i];
            for t in 0..tree.vertex_count() {
                if let Some(d) = tree.distance(t) {
                    base.insert((s as u32, t as u32), d);
                }
                for (pos, e) in tree.path_edges(t).iter().enumerate() {
                    if let Some(d) = oracle.distances[i].get(t, pos) {
                        table.insert((s as u32, t as u32, e.as_key()), d);
                    }
                }
            }
        }
        FlatReplacementOracle { table, base, sources: oracle.sources.clone() }
    }

    /// `QUERY(s, t, e)` with two hash probes: the stored entry when `e` is on the canonical
    /// path, the fault-free distance otherwise.
    pub fn query(&self, s: Vertex, t: Vertex, e: Edge) -> Option<Distance> {
        if !self.sources.contains(&s) {
            return None;
        }
        if let Some(&d) = self.table.get(&(s as u32, t as u32, e.as_key())) {
            return Some(d);
        }
        match self.base.get(&(s as u32, t as u32)) {
            Some(&d) => Some(d),
            None => Some(INFINITE_DISTANCE),
        }
    }

    /// Number of `(s, t, e)` entries stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no replacement entries are stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Splits `sources` into `shards` contiguous, non-empty, near-equal chunks (the first
/// `len % shards` chunks get one extra source). Concatenating the chunks in order yields the
/// original slice, which is what lets [`ReplacementPathOracle::from_shards`] preserve source
/// order.
///
/// # Panics
///
/// Panics if `shards` is zero or exceeds the number of sources.
pub fn shard_sources(sources: &[Vertex], shards: usize) -> Vec<&[Vertex]> {
    assert!(shards > 0, "at least one shard is required");
    assert!(shards <= sources.len(), "more shards ({shards}) than sources ({})", sources.len());
    let base = sources.len() / shards;
    let extra = sources.len() % shards;
    let mut chunks = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        chunks.push(&sources[start..start + len]);
        start += len;
    }
    chunks
}

/// Builds one [`ReplacementPathOracle`] per shard, in parallel (one `std::thread` worker per
/// shard, scoped). This is the construction half of
/// [`ReplacementPathOracle::build_parallel`]; it is public so that serving layers
/// (`msrp-serve`'s `ShardedOracle`) can keep the shards separate instead of merging them.
///
/// Freezes `g` into a [`CsrGraph`] once and hands every worker the same frozen view; see
/// [`build_shards_csr`].
///
/// `threads == 0` is treated as 1 (built inline, no thread spawned); thread counts above σ
/// are clamped to σ.
///
/// # Panics
///
/// Panics on the inputs [`ReplacementPathOracle::build`] rejects (empty, duplicate, or
/// out-of-range sources), and if a worker thread panics.
pub fn build_shards(
    g: &Graph,
    sources: &[Vertex],
    params: &MsrpParams,
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    build_shards_csr(&g.freeze(), sources, params, threads)
}

/// CSR entry point of [`build_shards`]: every scoped worker traverses the *same* frozen
/// graph through a shared reference — the adjacency structure is built exactly once, no
/// matter how many shards are constructed (an `Arc<CsrGraph>` gives the same sharing to
/// non-scoped callers).
///
/// # Panics
///
/// Same as [`build_shards`].
pub fn build_shards_csr(
    g: &CsrGraph,
    sources: &[Vertex],
    params: &MsrpParams,
    threads: usize,
) -> Vec<ReplacementPathOracle> {
    let threads = threads.max(1).min(sources.len().max(1));
    if threads == 1 {
        return vec![ReplacementPathOracle::build_csr(g, sources, params)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shard_sources(sources, threads)
            .into_iter()
            .map(|chunk| scope.spawn(move || ReplacementPathOracle::build_csr(g, chunk, params)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("oracle shard worker panicked")).collect()
    })
}

// The serving layer (`msrp-serve`) shares immutable oracles across worker threads; these
// compile-time assertions make sure a future refactor cannot silently lose thread-safety
// (e.g. by introducing `Rc` or interior mutability into the oracle or its substrates).
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<ReplacementPathOracle>();
    assert_send_sync::<FlatReplacementOracle>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, cycle_graph, grid_graph, path_graph};
    use msrp_rpath::replacement_distance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_matches_exact_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = connected_gnm(28, 64, &mut rng).unwrap();
        let sources = [0usize, 9, 17];
        let fast = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
        let exact = ReplacementPathOracle::build_exact(&g, &sources);
        for &s in &sources {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(
                        fast.replacement_distance(s, t, e),
                        exact.replacement_distance(s, t, e),
                        "s={s} t={t} e={e}"
                    );
                }
            }
        }
        assert_eq!(fast.entry_count(), exact.entry_count());
    }

    #[test]
    fn queries_for_non_sources_return_none() {
        let g = cycle_graph(6);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(3, 5, Edge::new(0, 1)), None);
        assert_eq!(oracle.distance(3, 5), None);
        assert_eq!(oracle.canonical_path(3, 5), None);
        assert_eq!(oracle.sources(), &[0]);
    }

    #[test]
    fn disconnections_are_reported_as_infinite() {
        let g = path_graph(5);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        assert_eq!(oracle.replacement_distance(0, 4, Edge::new(2, 3)), Some(INFINITE_DISTANCE));
        let costs = oracle.detour_costs(0, 4).unwrap();
        assert!(costs.iter().all(|(_, c)| c.is_none()));
    }

    #[test]
    fn detour_costs_match_definition() {
        let g = cycle_graph(8);
        let oracle = ReplacementPathOracle::build_exact(&g, &[0]);
        let costs = oracle.detour_costs(0, 3).unwrap();
        assert_eq!(costs.len(), 3);
        for (e, c) in costs {
            let truth = replacement_distance(&g, 0, 3, e);
            assert_eq!(c, Some(truth - 3));
        }
    }

    #[test]
    fn flat_oracle_agrees_with_structured_oracle() {
        let g = grid_graph(4, 4);
        let oracle = ReplacementPathOracle::build(&g, &[0, 15], &MsrpParams::default());
        let flat = oracle.flatten();
        assert_eq!(flat.len(), oracle.entry_count());
        assert!(!flat.is_empty());
        for &s in oracle.sources() {
            for t in 0..g.vertex_count() {
                for e in g.edges() {
                    assert_eq!(flat.query(s, t, e), oracle.replacement_distance(s, t, e));
                }
            }
        }
        assert_eq!(flat.query(7, 0, Edge::new(0, 1)), None);
    }

    #[test]
    fn shard_sources_partitions_in_order() {
        let sources = [3usize, 1, 4, 1, 5, 9, 2];
        for shards in 1..=sources.len() {
            let chunks = shard_sources(&sources, shards);
            assert_eq!(chunks.len(), shards);
            assert!(chunks.iter().all(|c| !c.is_empty()));
            let max = chunks.iter().map(|c| c.len()).max().unwrap();
            let min = chunks.iter().map(|c| c.len()).min().unwrap();
            assert!(max - min <= 1, "chunks must be near-equal");
            let rejoined: Vec<_> = chunks.concat();
            assert_eq!(rejoined, sources);
        }
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn shard_sources_rejects_more_shards_than_sources() {
        let _ = shard_sources(&[0, 1], 3);
    }

    #[test]
    fn parallel_build_agrees_with_sequential_build() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = connected_gnm(30, 70, &mut rng).unwrap();
        let sources = [0usize, 5, 11, 17, 23, 29];
        let sequential = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
        for threads in [0usize, 1, 2, 3, 4, 16] {
            let parallel = ReplacementPathOracle::build_parallel(
                &g,
                &sources,
                &MsrpParams::default(),
                threads,
            );
            assert_eq!(parallel.sources(), &sources);
            for &s in &sources {
                for t in 0..g.vertex_count() {
                    assert_eq!(parallel.distance(s, t), sequential.distance(s, t));
                    for e in g.edges() {
                        assert_eq!(
                            parallel.replacement_distance(s, t, e),
                            sequential.replacement_distance(s, t, e),
                            "threads={threads} s={s} t={t} e={e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn from_shards_preserves_source_order() {
        let g = cycle_graph(10);
        let shards = vec![
            ReplacementPathOracle::build_exact(&g, &[4, 1]),
            ReplacementPathOracle::build_exact(&g, &[7]),
        ];
        let merged = ReplacementPathOracle::from_shards(shards);
        assert_eq!(merged.sources(), &[4, 1, 7]);
        let whole = ReplacementPathOracle::build_exact(&g, &[4, 1, 7]);
        for &s in merged.sources() {
            for t in 0..10 {
                for e in g.edges() {
                    assert_eq!(
                        merged.replacement_distance(s, t, e),
                        whole.replacement_distance(s, t, e)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_shards_panic() {
        let g = cycle_graph(6);
        let shards = vec![
            ReplacementPathOracle::build_exact(&g, &[0, 2]),
            ReplacementPathOracle::build_exact(&g, &[2]),
        ];
        let _ = ReplacementPathOracle::from_shards(shards);
    }

    #[test]
    fn canonical_paths_are_exposed() {
        let g = cycle_graph(7);
        let oracle = ReplacementPathOracle::build_exact(&g, &[2]);
        assert_eq!(oracle.canonical_path(2, 4), Some(vec![2, 3, 4]));
    }
}
