//! Incremental Bernstein–Karger rebuild after a single edge change — the oracle side of
//! live-churn serving.
//!
//! A churn event toggles one edge (a failure removes it, a repair puts it back). Rebuilding
//! the whole oracle from scratch is always *correct*; the point of this module is to redo
//! strictly less work while staying **bit-for-bit equal** to the from-scratch build, which
//! is what lets the serving layer publish the result as a new epoch without a validation
//! pass.
//!
//! # Why invalidation is per *cut*, not per tree
//!
//! The tempting rule — "only sources whose BFS tree contains the failed edge rebuild" — is
//! unsound for replacement tables. Take edges `{0,1} {1,2} {0,3} {2,3}` with source 0: the
//! BFS tree is `{0,1} {1,2} {0,3}`, so removing the non-tree edge `{2,3}` leaves the tree
//! bit-identical, yet `QUERY(0, 2, {1,2})` changes from 2 (the detour 0–3–2) to ∞. Every
//! stored entry is a distance in `G \ e`, and *any* edge of `G` can carry a detour.
//!
//! The sound unit is the tree-edge **cut**. The table column of the cut below `c` is a
//! function of exactly three things (see `bk`): the seeds `d(s, x) + 1` over crossing edges,
//! the subgraph induced by the subtree of `c`, and the subtree membership itself. All three
//! depend only on (a) the shortest-path tree and (b) the set of edges with at least one
//! endpoint inside the subtree. So when the tree is unchanged, a toggled edge can only dirty
//! the cuts whose subtree contains one of its endpoints — the ancestors of those endpoints,
//! an `O(depth)` chain ([`TreePathCover::edge_touches_subtree`] is the membership test) —
//! and every other column is reused verbatim.
//!
//! # The per-source ladder
//!
//! For each source, cheapest applicable rung wins:
//!
//! 1. **Reuse** — both endpoints of the toggled edge are unreachable from the source. The
//!    change lives entirely in a component the source never sees: tree and rows are shared
//!    (cheap `Vec` clones of the same values).
//! 2. **Patch** — a fresh BFS on the new graph produces the same distances *and* parents as
//!    the old tree. Only the dirty cuts (ancestors of the toggled edge's endpoints) are
//!    re-solved; clean columns are kept.
//! 3. **Rebuild** — the tree changed; the whole per-source table is reconstructed with the
//!    ordinary BK pipeline.
//!
//! The equality test in rung 2 compares distances and parents, not traversal order: any
//! tree with the same parent function yields the same canonical paths, the same path cover
//! subtree *sets*, and therefore the same table values.
//!
//! The differential suite at the bottom of this module drives seeded toggle sequences
//! through [`ReplacementPathOracle::rebuild_bk_csr`] and pins the result row-for-row against
//! `build_bk_csr` from scratch.

use std::time::{Duration, Instant};

use msrp_graph::{CsrGraph, DirOptScratch, Edge, ShortestPathTree, TreePathCover, Vertex};

use crate::bk::{bk_replacement_distances, solve_cut_into, BkScratch};
use crate::ReplacementPathOracle;

/// Work accounting of one (or several, via [`merge`](RebuildStats::merge)) incremental
/// rebuilds — the evidence that invalidation actually saved work over a from-scratch build,
/// which would rebuild every source and re-solve every cut.
///
/// Besides the rung *counts*, each rung also accumulates the wall time its sources spent
/// in it, so a stalled rebuild can be attributed (was the time burned re-solving dirty
/// cuts of patched sources, or in full per-source rebuilds?). Timing is always on: one
/// `Instant` pair per source, which is noise next to even a single BFS.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Sources the oracle covers (what a full rebuild recomputes).
    pub sources_total: usize,
    /// Sources whose tree and rows were reused verbatim (both endpoints unreachable).
    pub sources_reused: usize,
    /// Sources whose tree survived and only dirty cuts were re-solved.
    pub sources_patched: usize,
    /// Sources rebuilt with the full BK pipeline (the tree changed).
    pub sources_rebuilt: usize,
    /// Tree-edge cuts across all sources *after* the change (full-rebuild work unit count).
    pub cuts_total: usize,
    /// Cuts actually re-solved (all cuts of rebuilt sources + dirty cuts of patched ones).
    pub cuts_recomputed: usize,
    /// Wall time spent on sources that took the reuse rung (clone-only).
    pub reuse_time: Duration,
    /// Wall time spent on sources that took the patch rung (BFS + dirty-cut solves).
    pub patch_time: Duration,
    /// Wall time spent on sources that took the full-rebuild rung.
    pub rebuild_time: Duration,
}

impl RebuildStats {
    /// Accumulates another rebuild's counts (e.g. across shards or across churn events).
    pub fn merge(&mut self, other: &RebuildStats) {
        self.sources_total += other.sources_total;
        self.sources_reused += other.sources_reused;
        self.sources_patched += other.sources_patched;
        self.sources_rebuilt += other.sources_rebuilt;
        self.cuts_total += other.cuts_total;
        self.cuts_recomputed += other.cuts_recomputed;
        self.reuse_time += other.reuse_time;
        self.patch_time += other.patch_time;
        self.rebuild_time += other.rebuild_time;
    }

    /// The ladder as a table: `(rung name, sources that took it, wall time spent in it)`,
    /// cheapest rung first. Consumed by the churn report's stage table and the metrics
    /// exposition.
    pub fn rungs(&self) -> [(&'static str, usize, Duration); 3] {
        [
            ("reuse", self.sources_reused, self.reuse_time),
            ("patch", self.sources_patched, self.patch_time),
            ("rebuild", self.sources_rebuilt, self.rebuild_time),
        ]
    }

    /// Total wall time across the three rungs (≤ the caller-observed rebuild wall time,
    /// which also covers scratch setup and shard orchestration).
    pub fn rung_time(&self) -> Duration {
        self.reuse_time + self.patch_time + self.rebuild_time
    }

    /// `true` when the incremental path did strictly less work than a from-scratch build on
    /// both axes: fewer full per-source rebuilds than sources, and fewer re-solved cuts than
    /// cuts. (On a graph with no cuts this is vacuously false; churn workloads always have
    /// cuts.)
    pub fn strictly_less_than_full(&self) -> bool {
        self.sources_rebuilt < self.sources_total && self.cuts_recomputed < self.cuts_total
    }
}

/// The dirty cuts of a tree for a toggled edge: every reachable ancestor chain vertex of the
/// edge's endpoints, root excluded (the root has no cut above it). These are exactly the
/// cuts `c` with `cover.edge_touches_subtree(c, changed)`, enumerated in `O(depth)` by
/// walking parent pointers instead of testing all `n` cuts.
fn dirty_cuts(tree: &ShortestPathTree, changed: Edge) -> Vec<Vertex> {
    let mut dirty = Vec::new();
    for endpoint in [changed.lo(), changed.hi()] {
        if !tree.is_reachable(endpoint) {
            continue;
        }
        let mut v = endpoint;
        while let Some(p) = tree.parent(v) {
            dirty.push(v);
            v = p;
        }
    }
    dirty.sort_unstable();
    dirty.dedup();
    dirty
}

/// `true` when the two trees encode the same shortest-path forest: equal distance arrays and
/// equal parent functions. Traversal-order fields are deliberately not compared (they do not
/// affect any stored answer).
fn same_forest(a: &ShortestPathTree, b: &ShortestPathTree) -> bool {
    a.distances() == b.distances() && (0..a.vertex_count()).all(|v| a.parent(v) == b.parent(v))
}

impl ReplacementPathOracle {
    /// Rebuilds this oracle for `g_new` — the graph it was built over with the single edge
    /// `changed` added or removed — reusing every per-source table the change provably does
    /// not touch. The result is bit-for-bit equal to `build_bk_csr(g_new, sources)`; the
    /// returned [`RebuildStats`] say how much work that equality cost.
    ///
    /// # Panics
    ///
    /// Panics if `g_new` has a different vertex count than the graph this oracle was built
    /// over, or if an endpoint of `changed` is out of range.
    pub fn rebuild_bk_csr(&self, g_new: &CsrGraph, changed: Edge) -> (Self, RebuildStats) {
        let n = g_new.vertex_count();
        assert_eq!(n, self.vertex_count(), "churn must not change the vertex set");
        assert!(changed.hi() < n, "changed edge {changed:?} out of range");
        // The per-source probe BFS takes the direction-optimizing kernel: a rebuild visits
        // every source, most of which land in rung 2 where the tree BFS *is* the cost, and
        // dir-opt is bit-identical to the top-down kernel (so `same_forest` and the pinned
        // row-for-row equality with `build_bk_csr` are unaffected).
        let mut bfs = DirOptScratch::new();
        let mut scratch = BkScratch::new();
        let mut stats = RebuildStats { sources_total: self.sources.len(), ..Default::default() };
        let mut trees = Vec::with_capacity(self.trees.len());
        let mut distances = Vec::with_capacity(self.distances.len());
        for (old_tree, old_rows) in self.trees.iter().zip(&self.distances) {
            let rung_start = Instant::now();
            if !old_tree.is_reachable(changed.lo()) && !old_tree.is_reachable(changed.hi()) {
                // Rung 1: the toggled edge lives entirely in a component this source never
                // reaches (a removal keeps it unreachable; an addition between two
                // unreachable vertices merges components the source still cannot enter).
                // No BFS from the source and no cut search ever traverses it.
                stats.sources_reused += 1;
                stats.cuts_total += old_tree.bfs_order().len().saturating_sub(1);
                trees.push(old_tree.clone());
                distances.push(old_rows.clone());
                stats.reuse_time += rung_start.elapsed();
                continue;
            }
            let new_tree = ShortestPathTree::build_with_dir_opt(g_new, old_tree.source(), &mut bfs);
            stats.cuts_total += new_tree.bfs_order().len().saturating_sub(1);
            let cover = TreePathCover::build(&new_tree);
            if same_forest(&new_tree, old_tree) {
                // Rung 2: same forest ⇒ same canonical paths, same row layout, same subtree
                // sets. Only cuts whose subtree contains a toggled endpoint can differ.
                let mut rows = old_rows.clone();
                let dirty = dirty_cuts(&new_tree, changed);
                for &c in &dirty {
                    let p = new_tree.parent(c).expect("dirty cut vertex has a parent");
                    debug_assert!(cover.edge_touches_subtree(c, changed));
                    solve_cut_into(g_new, &new_tree, &cover, &mut scratch, &mut rows, p, c);
                }
                stats.cuts_recomputed += dirty.len();
                stats.sources_patched += 1;
                trees.push(new_tree);
                distances.push(rows);
                stats.patch_time += rung_start.elapsed();
            } else {
                // Rung 3: the shortest-path forest changed; rebuild this source outright.
                stats.cuts_recomputed += new_tree.bfs_order().len().saturating_sub(1);
                stats.sources_rebuilt += 1;
                distances.push(bk_replacement_distances(g_new, &new_tree, &cover, &mut scratch));
                trees.push(new_tree);
                stats.rebuild_time += rung_start.elapsed();
            }
        }
        (Self::from_parts(self.sources.clone(), trees, distances), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrp_graph::generators::{connected_gnm, grid_graph, path_graph};
    use msrp_graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Row-for-row equality with a from-scratch build: the oracle's entire answer state.
    fn assert_equals_scratch_build(inc: &ReplacementPathOracle, g: &CsrGraph) {
        let full = ReplacementPathOracle::build_bk_csr(g, inc.sources());
        assert_eq!(inc.per_source(), full.per_source());
        for (a, b) in inc.trees.iter().zip(&full.trees) {
            assert!(same_forest(a, b), "trees diverged for source {}", a.source());
        }
    }

    /// Toggles `e` in `g`: removes it when present, adds it when absent.
    fn toggle(g: &mut Graph, e: Edge) {
        let (u, v) = e.endpoints();
        if g.has_edge(u, v) {
            g.remove_edge(u, v).unwrap();
        } else {
            g.add_edge(u, v).unwrap();
        }
    }

    fn drive_sequence(mut g: Graph, sources: &[Vertex], seed: u64, steps: usize) -> RebuildStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut oracle = ReplacementPathOracle::build_bk_csr(&g.freeze(), sources);
        let mut removed: Vec<Edge> = Vec::new();
        let mut agg = RebuildStats::default();
        for step in 0..steps {
            // Alternate failures and repairs, biased toward failures while few are down.
            let repair = !removed.is_empty() && rng.gen_range(0..3usize) == 0;
            let e = if repair {
                removed.swap_remove(rng.gen_range(0..removed.len()))
            } else {
                let edges = g.edge_vec();
                edges[rng.gen_range(0..edges.len())]
            };
            if !repair {
                removed.push(e);
            }
            toggle(&mut g, e);
            let csr = g.freeze();
            let wall_start = Instant::now();
            let (next, stats) = oracle.rebuild_bk_csr(&csr, e);
            let wall = wall_start.elapsed();
            assert_eq!(
                stats.sources_reused + stats.sources_patched + stats.sources_rebuilt,
                stats.sources_total,
                "step {step}: every source takes exactly one rung"
            );
            assert!(stats.cuts_recomputed <= stats.cuts_total, "step {step}");
            assert!(stats.rung_time() <= wall, "step {step}: rung times cannot exceed wall");
            for (name, count, time) in stats.rungs() {
                assert!(
                    count > 0 || time == Duration::ZERO,
                    "step {step}: rung {name} charged {time:?} with no sources"
                );
            }
            assert_equals_scratch_build(&next, &csr);
            agg.merge(&stats);
            oracle = next;
        }
        agg
    }

    #[test]
    fn random_toggle_sequences_match_scratch_builds() {
        let mut rng = StdRng::seed_from_u64(501);
        for seed in 0..4u64 {
            let g = connected_gnm(28, 70, &mut rng).unwrap();
            let agg = drive_sequence(g, &[0, 9, 18, 27], 600 + seed, 12);
            assert!(
                agg.strictly_less_than_full(),
                "incremental must beat full rebuild in aggregate: {agg:?}"
            );
        }
    }

    #[test]
    fn grid_toggles_patch_rather_than_rebuild() {
        // Grids are dense in non-tree edges: most toggles leave every BFS forest intact, so
        // the patched rung must dominate and the aggregate stays strictly below full work.
        let agg = drive_sequence(grid_graph(6, 6), &[0, 35], 77, 10);
        assert!(agg.sources_patched > 0, "{agg:?}");
        assert!(agg.strictly_less_than_full(), "{agg:?}");
    }

    #[test]
    fn bridge_removal_and_repair_round_trip() {
        // On a path every edge is a bridge: removal changes the tree (full per-source
        // rebuild) and disconnects a suffix; repairing it must restore the original tables.
        let mut g = path_graph(8);
        let csr0 = g.freeze();
        let oracle0 = ReplacementPathOracle::build_bk_csr(&csr0, &[0, 7]);
        let bridge = Edge::new(3, 4);
        toggle(&mut g, bridge);
        let (broken, stats) = oracle0.rebuild_bk_csr(&g.freeze(), bridge);
        assert_equals_scratch_build(&broken, &g.freeze());
        assert_eq!(stats.sources_rebuilt, 2, "a bridge removal reshapes both trees");
        assert_eq!(broken.distance(0, 7), None);
        toggle(&mut g, bridge);
        let (repaired, _) = broken.rebuild_bk_csr(&g.freeze(), bridge);
        assert_equals_scratch_build(&repaired, &g.freeze());
        assert_eq!(repaired.per_source(), oracle0.per_source(), "repair restores the tables");
    }

    #[test]
    fn changes_in_unseen_components_reuse_everything() {
        // Two components; sources live in the first. Toggling inside the second must reuse
        // every per-source table without running a single BFS or cut search.
        let mut g = Graph::new(10);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (5, 6), (6, 7), (7, 8), (8, 5)] {
            g.add_edge(u, v).unwrap();
        }
        let oracle = ReplacementPathOracle::build_bk_csr(&g.freeze(), &[0, 2]);
        let far = Edge::new(5, 7);
        toggle(&mut g, far);
        let (next, stats) = oracle.rebuild_bk_csr(&g.freeze(), far);
        assert_eq!(stats.sources_reused, 2);
        assert_eq!(stats.cuts_recomputed, 0);
        assert_eq!(stats.patch_time, Duration::ZERO, "no time may be charged to idle rungs");
        assert_eq!(stats.rebuild_time, Duration::ZERO);
        assert_equals_scratch_build(&next, &g.freeze());
    }

    #[test]
    fn nontree_edge_removal_still_changes_answers() {
        // The soundness counterexample from the module docs: removing a *non-tree* edge
        // leaves the BFS tree identical but flips a stored detour to ∞. The patched rung
        // must catch it (a tree-level invalidation rule would not).
        let g0 = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (2, 3)]).unwrap();
        let oracle = ReplacementPathOracle::build_bk_csr(&g0.freeze(), &[0]);
        assert_eq!(oracle.replacement_distance(0, 2, Edge::new(1, 2)), Some(2));
        let mut g = g0.clone();
        let nontree = Edge::new(2, 3);
        toggle(&mut g, nontree);
        let (next, stats) = oracle.rebuild_bk_csr(&g.freeze(), nontree);
        // (The graph is so small that both endpoints' ancestor chains cover every cut, so
        // no cut is spared here — the saving shows on real workloads; what this test pins
        // is that the *patched* rung, not a tree-level skip, handles non-tree edges.)
        assert_eq!(stats.sources_patched, 1, "{stats:?}");
        assert_eq!(
            next.replacement_distance(0, 2, Edge::new(1, 2)),
            Some(msrp_graph::INFINITE_DISTANCE)
        );
        assert_equals_scratch_build(&next, &g.freeze());
    }

    #[test]
    #[should_panic(expected = "vertex set")]
    fn vertex_count_mismatch_is_rejected() {
        let g = path_graph(5);
        let oracle = ReplacementPathOracle::build_bk_csr(&g.freeze(), &[0]);
        let _ = oracle.rebuild_bk_csr(&path_graph(6).freeze(), Edge::new(0, 1));
    }
}
