//! Integration tests for the application crates (oracle, BMM reduction, network simulation,
//! Vickrey pricing) driven through the umbrella crate's public API.

use msrp::bmm::{multiply_via_msrp, BoolMatrix, ReductionPlan};
use msrp::core::MsrpParams;
use msrp::graph::generators::{connected_gnm, cycle_graph, grid_graph};
use msrp::netsim::{run_simulation, vickrey_prices, SimulationConfig};
use msrp::oracle::ReplacementPathOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn bmm_reduction_agrees_with_naive_product_over_densities() {
    let mut rng = StdRng::seed_from_u64(1);
    for &density in &[0.05, 0.2, 0.5, 0.9] {
        let a = BoolMatrix::random(12, density, &mut rng);
        let b = BoolMatrix::random(12, density, &mut rng);
        let expected = a.multiply_naive(&b);
        for sigma in [1usize, 3] {
            assert_eq!(
                multiply_via_msrp(&a, &b, sigma, &MsrpParams::default()),
                expected,
                "density {density}, sigma {sigma}"
            );
        }
    }
}

#[test]
fn reduction_plan_sizes_follow_the_theorem() {
    // Theorem 28 uses sqrt(n/σ) graphs, each with O(n) vertices.
    let plan = ReductionPlan::for_size(64, 4);
    assert_eq!(plan.rows_per_source, 4); // sqrt(64/4)
    assert_eq!(plan.batches, 4); // 64 / (4 * 4)
    let mut rng = StdRng::seed_from_u64(2);
    let a = BoolMatrix::random(64, 0.05, &mut rng);
    let b = BoolMatrix::random(64, 0.05, &mut rng);
    let gadget = msrp::bmm::GadgetGraph::build(&a, &b, 0, &plan);
    assert!(gadget.graph.vertex_count() < 6 * 64, "gadget graphs stay linear in n");
    assert_eq!(gadget.sources.len(), 4);
}

#[test]
fn simulation_answers_are_consistent_on_every_family() {
    let mut rng = StdRng::seed_from_u64(3);
    let graphs = vec![cycle_graph(30), grid_graph(6, 6), connected_gnm(36, 80, &mut rng).unwrap()];
    for g in graphs {
        let n = g.vertex_count();
        let config = SimulationConfig {
            gateways: vec![0, n / 2],
            failures: 15,
            queries_per_failure: 6,
            seed: 42,
            params: MsrpParams::default(),
        };
        let report = run_simulation(&g, &config);
        assert_eq!(report.mismatches, 0);
        assert_eq!(report.total_queries, 15 * 6);
    }
}

#[test]
fn vickrey_prices_are_consistent_with_oracle_distances() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = connected_gnm(30, 70, &mut rng).unwrap();
    let oracle = ReplacementPathOracle::build(&g, &[0], &MsrpParams::default());
    for t in 1..g.vertex_count() {
        let base = oracle.distance(0, t).unwrap();
        let prices = vickrey_prices(&oracle, 0, t).unwrap();
        assert_eq!(prices.len() as u32, base);
        for p in prices {
            match p.replacement {
                Some(rep) => {
                    assert!(rep >= base);
                    assert_eq!(p.payment, Some(rep - base + 1));
                }
                None => assert!(p.is_critical()),
            }
        }
    }
}

#[test]
fn oracle_entry_counts_scale_with_sources() {
    let g = grid_graph(5, 5);
    let one = ReplacementPathOracle::build(&g, &[0], &MsrpParams::default());
    let three = ReplacementPathOracle::build(&g, &[0, 12, 24], &MsrpParams::default());
    assert!(three.entry_count() > one.entry_count());
    assert_eq!(three.sources().len(), 3);
}
