//! Cross-crate integration tests: the full pipeline from graph generation through the paper's
//! solvers to the oracle and the applications, checked against the brute-force ground truth.

use msrp::core::verify::{exactness, verify_msrp, verify_ssrp};
use msrp::core::{solve_msrp, solve_ssrp, MsrpParams, SourceToLandmarkStrategy};
use msrp::graph::generators::{
    barabasi_albert, connected_gnm, cycle_graph, grid_graph, hypercube, random_geometric,
    torus_graph,
};
use msrp::graph::{Graph, ShortestPathTree, INFINITE_DISTANCE};
use msrp::oracle::ReplacementPathOracle;
use msrp::rpath::{compare, single_source_brute_force, single_source_via_single_pair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sources_for(n: usize, sigma: usize) -> Vec<usize> {
    (0..sigma).map(|i| i * n / sigma).collect()
}

#[test]
fn ssrp_is_exact_on_a_suite_of_graph_families() {
    let params = MsrpParams::default();
    let mut rng = StdRng::seed_from_u64(1);
    let graphs: Vec<(&str, Graph)> = vec![
        ("cycle", cycle_graph(21)),
        ("grid", grid_graph(5, 6)),
        ("torus", torus_graph(5, 5)),
        ("hypercube", hypercube(5)),
        ("gnm", connected_gnm(60, 150, &mut rng).unwrap()),
        ("preferential", barabasi_albert(60, 2, &mut rng).unwrap()),
        ("geometric", random_geometric(60, 0.25, true, &mut rng)),
    ];
    for (name, g) in graphs {
        let out = solve_ssrp(&g, 0, &params);
        let report = verify_ssrp(&g, &out);
        assert!(report.is_exact(), "{name}: {:?}", report.mismatches.first());
    }
}

#[test]
fn msrp_is_exact_across_sigma_values() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = connected_gnm(48, 120, &mut rng).unwrap();
    for sigma in [1usize, 2, 4, 8, 16, 48] {
        let sources = sources_for(48, sigma);
        let out = solve_msrp(&g, &sources, &MsrpParams::default());
        let reports = verify_msrp(&g, &out);
        let (good, total) = exactness(&reports);
        assert_eq!(good, total, "sigma = {sigma}");
        assert_eq!(out.source_count(), sigma);
    }
}

#[test]
fn all_algorithms_agree_with_each_other() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = connected_gnm(40, 100, &mut rng).unwrap();
    let tree = ShortestPathTree::build(&g, 7);
    let brute = single_source_brute_force(&g, &tree);
    let classical = single_source_via_single_pair(&g, &tree);
    let paper = solve_ssrp(&g, 7, &MsrpParams::default());
    let msrp = solve_msrp(&g, &[7, 21], &MsrpParams::default());
    assert!(compare(&brute, &classical).is_exact());
    assert!(compare(&brute, &paper.distances).is_exact());
    assert!(compare(&brute, &msrp.per_source[0]).is_exact());
}

#[test]
fn path_cover_and_exact_strategies_agree() {
    let mut rng = StdRng::seed_from_u64(4);
    for trial in 0..3u64 {
        let g = connected_gnm(32, 80, &mut rng).unwrap();
        let sources = sources_for(32, 4);
        let pc = solve_msrp(&g, &sources, &MsrpParams::default().with_seed(trial));
        let ex = solve_msrp(
            &g,
            &sources,
            &MsrpParams::default().with_seed(trial).with_strategy(SourceToLandmarkStrategy::Exact),
        );
        for i in 0..sources.len() {
            assert_eq!(pc.per_source[i], ex.per_source[i], "trial {trial}, source index {i}");
        }
    }
}

#[test]
fn oracle_round_trip_through_the_full_stack() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = connected_gnm(36, 90, &mut rng).unwrap();
    let sources = sources_for(36, 3);
    let oracle = ReplacementPathOracle::build(&g, &sources, &MsrpParams::default());
    let flat = oracle.flatten();
    for &s in &sources {
        for t in 0..g.vertex_count() {
            for e in g.edges() {
                let expected = msrp::rpath::replacement_distance(&g, s, t, e);
                let e_on_path = oracle
                    .canonical_path(s, t)
                    .map(|p| p.windows(2).any(|w| msrp::graph::Edge::new(w[0], w[1]) == e))
                    .unwrap_or(false);
                let got = oracle.replacement_distance(s, t, e).unwrap();
                let got_flat = flat.query(s, t, e).unwrap();
                assert_eq!(got, got_flat);
                if e_on_path {
                    assert_eq!(got, expected, "s={s} t={t} e={e}");
                } else {
                    // Off-path failures return the fault-free distance by definition.
                    assert_eq!(got, oracle.distance(s, t).unwrap_or(INFINITE_DISTANCE));
                }
            }
        }
    }
}

#[test]
fn disconnected_graphs_are_handled_throughout() {
    // Two components: a cycle and a path; sources in both.
    let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
    edges.extend_from_slice(&[(4, 5), (5, 6)]);
    let g = Graph::from_edges(7, &edges).unwrap();
    let out = solve_msrp(&g, &[0, 4], &MsrpParams::default());
    let reports = verify_msrp(&g, &out);
    let (good, total) = exactness(&reports);
    assert_eq!(good, total);
    // Cross-component queries report infinity.
    assert_eq!(out.distance_avoiding(0, 5, msrp::graph::Edge::new(0, 1)), Some(INFINITE_DISTANCE));
}

#[test]
fn outputs_are_reproducible_across_runs() {
    let mut rng = StdRng::seed_from_u64(6);
    let g = connected_gnm(50, 130, &mut rng).unwrap();
    let sources = sources_for(50, 5);
    let params = MsrpParams::default().with_seed(77);
    let a = solve_msrp(&g, &sources, &params);
    let b = solve_msrp(&g, &sources, &params);
    for i in 0..sources.len() {
        assert_eq!(a.per_source[i], b.per_source[i]);
    }
    assert_eq!(a.entry_count(), b.entry_count());
}
