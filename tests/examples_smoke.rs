//! Smoke test: every example in `examples/` compiles and runs to completion.
//!
//! Ignored by default because it re-invokes `cargo` (slow, and it would recompile the
//! workspace inside `cargo test`). CI runs it explicitly with
//! `cargo test --release --test examples_smoke -- --ignored`, and also builds the
//! example targets via `cargo build --examples` on every push.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 7] = [
    "quickstart",
    "bmm_reduction",
    "churn_swap",
    "network_resilience",
    "scaling_study",
    "serve_tcp",
    "vickrey_pricing",
];

/// The example list above must stay in sync with the files on disk.
#[test]
fn example_list_is_complete() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let name = entry.expect("readable dir entry").file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort_unstable();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort_unstable();
    assert_eq!(listed, on_disk, "EXAMPLES constant is out of sync with examples/*.rs");
}

#[test]
#[ignore = "re-invokes cargo; run explicitly (CI does) with --ignored"]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--release", "--example", example])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
    }
}
