//! Integration test of the serving stack through the umbrella crate: sharded parallel
//! construction → `QueryService` → the netsim failure scenario, all cross-checked against the
//! single-threaded solver output.

use msrp::core::MsrpParams;
use msrp::graph::generators::connected_gnm;
use msrp::netsim::{run_simulation, run_simulation_with_service, SimulationConfig};
use msrp::oracle::ReplacementPathOracle;
use msrp::serve::{run_closed_loop, LoadConfig, QueryService, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn the_full_serving_stack_is_answer_preserving() {
    let mut rng = StdRng::seed_from_u64(12);
    let g = connected_gnm(48, 110, &mut rng).unwrap();
    let sources = [0usize, 11, 23, 35, 47];
    let params = MsrpParams::default();

    // Parallel construction must agree with sequential construction through the re-exports.
    let sequential = ReplacementPathOracle::build(&g, &sources, &params);
    let parallel = ReplacementPathOracle::build_parallel(&g, &sources, &params, 3);
    for &s in &sources {
        for t in 0..g.vertex_count() {
            for e in g.edges() {
                assert_eq!(
                    parallel.replacement_distance(s, t, e),
                    sequential.replacement_distance(s, t, e)
                );
            }
        }
    }

    // A service-driven load answers the same numbers as the in-process oracle (checksummed
    // by the deterministic closed-loop generator) and keeps its books consistent.
    let service =
        QueryService::build_and_start(&g, &sources, &params, 2, &ServiceConfig { workers: 3 });
    let load = LoadConfig { clients: 2, batches_per_client: 8, batch_size: 32, seed: 5 };
    let report_a = run_closed_loop(&service, &g, &load);
    let metrics = service.shutdown();
    assert_eq!(metrics.queries_total, report_a.total_queries);
    assert_eq!(metrics.unroutable_total, 0);

    let service_again =
        QueryService::build_and_start(&g, &sources, &params, 1, &ServiceConfig { workers: 1 });
    let report_b = run_closed_loop(&service_again, &g, &load);
    service_again.shutdown();
    assert_eq!(report_a.checksum, report_b.checksum);

    // The netsim failure scenario routed through the service matches the plain simulation.
    let config = SimulationConfig {
        gateways: sources.to_vec(),
        failures: 12,
        queries_per_failure: 8,
        seed: 31,
        params,
    };
    let plain = run_simulation(&g, &config);
    let served = run_simulation_with_service(&g, &config, 2, 2);
    assert_eq!(served.mismatches, 0);
    assert_eq!(plain.total_stretch, served.total_stretch);
    for (a, b) in plain.events.iter().zip(&served.events) {
        assert_eq!(a.answers, b.answers);
    }
}
