//! Property-based tests (proptest) over random graphs: the randomized solvers must agree with
//! the brute-force ground truth, and structural invariants of the output must hold.

use msrp::core::{solve_msrp, solve_ssrp, MsrpParams};
use msrp::graph::{Graph, ShortestPathTree, INFINITE_DISTANCE};
use msrp::rpath::{compare, single_source_brute_force, single_source_via_single_pair};
use proptest::prelude::*;

/// Strategy: a connected graph with `n ∈ [4, 28]` vertices built from a random spanning tree
/// plus a set of random extra edges, together with a vertex index usable as a source.
fn connected_graph() -> impl Strategy<Value = (Graph, usize)> {
    (4usize..28)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0usize..1000, n - 1);
            let extra = proptest::collection::vec((0usize..n, 0usize..n), 0..(2 * n));
            let source = 0usize..n;
            (Just(n), tree_parents, extra, source)
        })
        .prop_map(|(n, parents, extra, source)| {
            let mut g = Graph::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = i + 1;
                let parent = p % child;
                let _ = g.add_edge_if_absent(parent, child);
            }
            for (u, v) in extra {
                if u != v {
                    let _ = g.add_edge_if_absent(u, v);
                }
            }
            (g, source)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ssrp_matches_brute_force_on_random_connected_graphs((g, source) in connected_graph()) {
        let out = solve_ssrp(&g, source, &MsrpParams::default());
        let truth = single_source_brute_force(&g, &out.tree);
        let report = compare(&truth, &out.distances);
        prop_assert!(report.is_exact(), "mismatch: {:?}", report.mismatches.first());
    }

    #[test]
    fn classical_baseline_matches_brute_force((g, source) in connected_graph()) {
        let tree = ShortestPathTree::build(&g, source);
        let truth = single_source_brute_force(&g, &tree);
        let fast = single_source_via_single_pair(&g, &tree);
        prop_assert!(compare(&truth, &fast).is_exact());
    }

    #[test]
    fn msrp_matches_brute_force_with_three_sources((g, source) in connected_graph()) {
        let n = g.vertex_count();
        let mut sources = vec![source, (source + n / 3) % n, (source + 2 * n / 3) % n];
        sources.sort_unstable();
        sources.dedup();
        let out = solve_msrp(&g, &sources, &MsrpParams::default());
        for (i, dist) in out.per_source.iter().enumerate() {
            let truth = single_source_brute_force(&g, &out.trees[i]);
            let report = compare(&truth, dist);
            prop_assert!(report.is_exact(), "source {}: {:?}", out.sources[i], report.mismatches.first());
        }
    }

    #[test]
    fn replacement_distances_are_never_shorter_than_the_original((g, source) in connected_graph()) {
        let out = solve_ssrp(&g, source, &MsrpParams::default());
        for (t, _i, d) in out.distances.iter() {
            if let Some(base) = out.tree.distance(t) {
                prop_assert!(d == INFINITE_DISTANCE || d >= base,
                    "replacement {} shorter than base {} for target {}", d, base, t);
            }
        }
    }

    #[test]
    fn scaled_constants_never_under_estimate((g, source) in connected_graph()) {
        let params = MsrpParams::scaled_for_benchmarks();
        let out = solve_ssrp(&g, source, &params);
        let truth = single_source_brute_force(&g, &out.tree);
        let report = compare(&truth, &out.distances);
        prop_assert_eq!(report.under_estimates, 0);
    }
}
