//! Property-based tests over random graphs: the randomized solvers must agree with the
//! brute-force ground truth, and structural invariants of the output must hold.
//!
//! Each property is checked over a fixed number of cases generated from a pinned
//! `StdRng` seed, so a failure is reproducible from the case index alone (the suite used
//! to rely on `proptest`, whose default configuration reruns with fresh entropy).

use msrp::core::{solve_msrp, solve_ssrp, MsrpParams};
use msrp::graph::{Graph, ShortestPathTree, INFINITE_DISTANCE};
use msrp::rpath::{compare, single_source_brute_force, single_source_via_single_pair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

/// A connected graph with `n ∈ [4, 28)` vertices built from a random spanning tree plus
/// random extra edges, together with a vertex index usable as a source.
fn connected_graph(rng: &mut StdRng) -> (Graph, usize) {
    let n = rng.gen_range(4usize..28);
    let mut g = Graph::new(n);
    for child in 1..n {
        let parent = rng.gen_range(0usize..1000) % child;
        let _ = g.add_edge_if_absent(parent, child);
    }
    for _ in 0..rng.gen_range(0..2 * n) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            let _ = g.add_edge_if_absent(u, v);
        }
    }
    let source = rng.gen_range(0..n);
    (g, source)
}

#[test]
fn ssrp_matches_brute_force_on_random_connected_graphs() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let (g, source) = connected_graph(&mut rng);
        let out = solve_ssrp(&g, source, &MsrpParams::default());
        let truth = single_source_brute_force(&g, &out.tree);
        let report = compare(&truth, &out.distances);
        assert!(report.is_exact(), "case {case}: mismatch: {:?}", report.mismatches.first());
    }
}

#[test]
fn classical_baseline_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    for case in 0..CASES {
        let (g, source) = connected_graph(&mut rng);
        let tree = ShortestPathTree::build(&g, source);
        let truth = single_source_brute_force(&g, &tree);
        let fast = single_source_via_single_pair(&g, &tree);
        assert!(compare(&truth, &fast).is_exact(), "case {case}");
    }
}

#[test]
fn msrp_matches_brute_force_with_three_sources() {
    let mut rng = StdRng::seed_from_u64(0x3507);
    for case in 0..CASES {
        let (g, source) = connected_graph(&mut rng);
        let n = g.vertex_count();
        let mut sources = vec![source, (source + n / 3) % n, (source + 2 * n / 3) % n];
        sources.sort_unstable();
        sources.dedup();
        let out = solve_msrp(&g, &sources, &MsrpParams::default());
        for (i, dist) in out.per_source.iter().enumerate() {
            let truth = single_source_brute_force(&g, &out.trees[i]);
            let report = compare(&truth, dist);
            assert!(
                report.is_exact(),
                "case {case}, source {}: {:?}",
                out.sources[i],
                report.mismatches.first()
            );
        }
    }
}

#[test]
fn replacement_distances_are_never_shorter_than_the_original() {
    let mut rng = StdRng::seed_from_u64(0x10_0A_D5);
    for case in 0..CASES {
        let (g, source) = connected_graph(&mut rng);
        let out = solve_ssrp(&g, source, &MsrpParams::default());
        for (t, _i, d) in out.distances.iter() {
            if let Some(base) = out.tree.distance(t) {
                assert!(
                    d == INFINITE_DISTANCE || d >= base,
                    "case {case}: replacement {d} shorter than base {base} for target {t}"
                );
            }
        }
    }
}

#[test]
fn scaled_constants_never_under_estimate() {
    let mut rng = StdRng::seed_from_u64(0x5CA1ED);
    for case in 0..CASES {
        let (g, source) = connected_graph(&mut rng);
        let params = MsrpParams::scaled_for_benchmarks();
        let out = solve_ssrp(&g, source, &params);
        let truth = single_source_brute_force(&g, &out.tree);
        let report = compare(&truth, &out.distances);
        assert_eq!(report.under_estimates, 0, "case {case}");
    }
}
